package trace

import (
	"fmt"
	"math"
	"math/rand"

	"mpegsmooth/internal/mpeg"
)

// ScenePhase describes one scene segment of a synthetic trace. Within a
// scene, picture sizes fluctuate mildly around per-type baselines; across
// scene boundaries they jump, because scene content changes abruptly and
// the pictures straddling the cut lose their temporal prediction.
type ScenePhase struct {
	// Pictures is the length of the scene in pictures.
	Pictures int
	// Complexity scales I picture sizes (spatial detail), 1.0 = nominal.
	Complexity float64
	// Motion scales P and B picture sizes (temporal activity), 1.0 =
	// nominal. The paper: "Pictures also require more bits to encode when
	// there is a lot of motion in a scene (P and B pictures in
	// particular)."
	Motion float64
	// MotionRamp linearly ramps Motion to Motion+MotionRamp across the
	// scene (Tennis's instructor standing up).
	MotionRamp float64
	// PSpikes lists picture offsets (within the scene) at which an
	// isolated large P picture occurs, as in the Tennis sequence.
	PSpikes []int
}

// SynthConfig parameterizes a synthetic trace.
type SynthConfig struct {
	Name string
	GOP  mpeg.GOP
	// Tau is the picture period (default 1/30 s if zero).
	Tau float64
	// IBase, PBase, BBase are nominal picture sizes in bits at
	// Complexity = Motion = 1.
	IBase, PBase, BBase float64
	// Scenes is the scene script; sizes are generated scene by scene.
	Scenes []ScenePhase
	// Jitter is the relative amplitude of correlated per-picture noise
	// (0.08 means sizes wander ±~8%). Defaults to 0.08 if zero.
	Jitter float64
	// Seed makes the trace deterministic.
	Seed int64
}

// Generate produces the trace described by cfg.
func Generate(cfg SynthConfig) (*Trace, error) {
	if cfg.Tau == 0 {
		cfg.Tau = 1.0 / 30
	}
	if cfg.Jitter == 0 {
		cfg.Jitter = 0.08
	}
	if err := cfg.GOP.Validate(); err != nil {
		return nil, err
	}
	if cfg.IBase <= 0 || cfg.PBase <= 0 || cfg.BBase <= 0 {
		return nil, fmt.Errorf("trace: non-positive base sizes %v/%v/%v", cfg.IBase, cfg.PBase, cfg.BBase)
	}
	if len(cfg.Scenes) == 0 {
		return nil, fmt.Errorf("trace: no scenes")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var sizes []int64
	// AR(1) multiplicative noise: consecutive pictures of the same scene
	// are correlated, like real encoder output.
	noise := 0.0
	const rho = 0.85

	idx := 0
	for si, scene := range cfg.Scenes {
		if scene.Pictures <= 0 {
			return nil, fmt.Errorf("trace: scene %d has %d pictures", si, scene.Pictures)
		}
		// Snap each requested spike offset to the first P picture at or
		// after it within the scene, since only P pictures spike.
		spikes := map[int]bool{}
		for _, off := range scene.PSpikes {
			for k := off; k < scene.Pictures; k++ {
				if cfg.GOP.TypeOf(idx+k) == mpeg.TypeP {
					spikes[k] = true
					break
				}
			}
		}
		for k := 0; k < scene.Pictures; k++ {
			progress := 0.0
			if scene.Pictures > 1 {
				progress = float64(k) / float64(scene.Pictures-1)
			}
			motion := scene.Motion + scene.MotionRamp*progress
			noise = rho*noise + (1-rho)*(rng.Float64()*2-1)
			mul := 1 + cfg.Jitter*noise*3 // scale AR(1) to target amplitude

			var base float64
			switch cfg.GOP.TypeOf(idx) {
			case mpeg.TypeI:
				base = cfg.IBase * scene.Complexity
			case mpeg.TypeP:
				base = cfg.PBase * scene.Complexity * motionScale(motion)
				if spikes[k] {
					base *= 2.8 // isolated large P (Tennis)
				}
			case mpeg.TypeB:
				base = cfg.BBase * scene.Complexity * motionScale(motion)
			}
			// Pictures straddling a scene cut: the first reference-distance
			// worth of P/B pictures in a new scene predict across the cut
			// and blow up toward intra cost.
			if si > 0 && k < cfg.GOP.M && cfg.GOP.TypeOf(idx) != mpeg.TypeI {
				base = math.Max(base, 0.55*cfg.IBase*scene.Complexity)
			}
			s := int64(base * mul)
			if s < 1024 {
				s = 1024 // headers alone cost something
			}
			sizes = append(sizes, s)
			idx++
		}
	}
	return &Trace{Name: cfg.Name, Tau: cfg.Tau, GOP: cfg.GOP, Sizes: sizes}, nil
}

// motionScale maps a motion level to a P/B size multiplier: near-static
// scenes compress their predicted pictures dramatically (skipped
// macroblocks), while fast scenes approach the nominal size.
func motionScale(motion float64) float64 {
	if motion < 0 {
		motion = 0
	}
	return 0.15 + 0.85*math.Min(motion, 1.5)
}

// The four MPEG video sequences of Section 5.1, reconstructed as
// calibrated synthetic generators. Sizes follow the paper's Figure 3 and
// prose: 640x480 sequences have I pictures around 200,000-283,000 bits
// and B pictures an order of magnitude smaller; smoothed rates run 1-3
// Mbps (and about 1.5 Mbps for the 352x288 Backyard sequence); scene
// changes cause abrupt size jumps; Tennis ramps gradually with two
// isolated large P pictures in its first half.

// Driving1 returns the Driving video coded with N=9, M=3 (IBBPBBPBB) at
// 640x480: fast countryside, a close-up of the driver, then back.
func Driving1(pictures int, seed int64) (*Trace, error) {
	return drivingTrace("Driving1", mpeg.GOP{M: 3, N: 9}, pictures, seed)
}

// Driving2 returns the same Driving video coded with N=6, M=2 (IBPBPB).
func Driving2(pictures int, seed int64) (*Trace, error) {
	return drivingTrace("Driving2", mpeg.GOP{M: 2, N: 6}, pictures, seed)
}

func drivingTrace(name string, gop mpeg.GOP, pictures int, seed int64) (*Trace, error) {
	a := pictures * 2 / 5
	b := pictures * 3 / 10
	c := pictures - a - b
	return Generate(SynthConfig{
		Name: name,
		GOP:  gop,
		// 640x480 at quantizer scales 4/6/15: I ≈ 210 kbit, countryside
		// P ≈ 95 kbit, B ≈ 32 kbit.
		IBase: 210_000, PBase: 95_000, BBase: 32_000,
		Scenes: []ScenePhase{
			{Pictures: a, Complexity: 1.0, Motion: 1.2},   // fast countryside
			{Pictures: b, Complexity: 0.55, Motion: 0.15}, // driver close-up
			{Pictures: c, Complexity: 1.0, Motion: 1.25},  // countryside again
		},
		Seed: seed,
	})
}

// Tennis returns the Tennis video (N=9, M=3, 640x480): one scene, motion
// ramping up as the instructor gets up, with two isolated large P
// pictures in the first half.
func Tennis(pictures int, seed int64) (*Trace, error) {
	return Generate(SynthConfig{
		Name:  "Tennis",
		GOP:   mpeg.GOP{M: 3, N: 9},
		IBase: 265_000, PBase: 85_000, BBase: 25_000,
		Scenes: []ScenePhase{
			{
				Pictures:   pictures,
				Complexity: 1.0,
				Motion:     0.25,
				MotionRamp: 1.0,
				PSpikes:    []int{pictures / 5, pictures * 2 / 5},
			},
		},
		Seed: seed,
	})
}

// Backyard returns the Backyard video (N=12, M=3, 352x288): complex
// detailed backgrounds, unhurried motion, two scene changes. The smaller
// spatial resolution halves picture sizes relative to the other
// sequences (maximum smoothed rate about 1.5 Mbps).
func Backyard(pictures int, seed int64) (*Trace, error) {
	a := pictures * 2 / 5
	b := pictures * 3 / 10
	c := pictures - a - b
	return Generate(SynthConfig{
		Name:  "Backyard",
		GOP:   mpeg.GOP{M: 3, N: 12},
		IBase: 110_000, PBase: 38_000, BBase: 13_000,
		Scenes: []ScenePhase{
			{Pictures: a, Complexity: 1.0, Motion: 0.4},
			{Pictures: b, Complexity: 0.92, Motion: 0.45},
			{Pictures: c, Complexity: 1.05, Motion: 0.4},
		},
		Seed: seed,
	})
}

// PaperSequences returns all four experimental sequences at the given
// length, in the order the paper lists them.
func PaperSequences(pictures int, seed int64) ([]*Trace, error) {
	var out []*Trace
	for _, gen := range []func(int, int64) (*Trace, error){Driving1, Driving2, Tennis, Backyard} {
		tr, err := gen(pictures, seed)
		if err != nil {
			return nil, err
		}
		out = append(out, tr)
	}
	return out, nil
}
