// Command smoothd is the multi-stream smoothing server: it accepts
// picture-stream sessions over TCP, admits each one against a shared
// egress link's capacity by its declared smoothed peak rate, smooths
// every admitted stream through its own session with the configured
// policy, and paces all output onto the shared link. An operations
// endpoint on a side port reports live counters as JSON and expvar.
//
// Usage:
//
//	smoothd -listen 127.0.0.1:8402 -ops 127.0.0.1:8403 -capacity 10e6
//	streamer send -connect 127.0.0.1:8402 -handshake -seq driving1
//
// SIGINT/SIGTERM drain gracefully: no new sessions are admitted, active
// streams run to completion (bounded by -drain-timeout), then the
// process exits with a summary.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mpegsmooth"
	"mpegsmooth/internal/journal"
	"mpegsmooth/internal/server"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "smoothd: %v\n", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("smoothd", flag.ContinueOnError)
	var (
		listen       = fs.String("listen", "127.0.0.1:8402", "stream session listen address")
		opsAddr      = fs.String("ops", "127.0.0.1:8403", "operations endpoint listen address (empty = disabled)")
		capacity     = fs.Float64("capacity", 10e6, "shared egress link capacity (bits/s)")
		policySpec   = fs.String("policy", "basic", "rate policy: basic, moving-average, capped:<bps>, min-var")
		hFlag        = fs.Int("H", 0, "lookahead in pictures (0 = each stream's pattern length)")
		queueLen     = fs.Int("queue", 32, "per-stream decision queue length (backpressure bound)")
		maxStreams   = fs.Int("max-streams", 0, "concurrent stream cap (0 = capacity-limited only)")
		readTimeout  = fs.Duration("read-timeout", 30*time.Second, "per-message read deadline")
		writeTimeout = fs.Duration("write-timeout", 30*time.Second, "per-write deadline for verdicts and deadline-capable egress sinks")
		resumeWindow = fs.Duration("resume-window", 10*time.Second, "how long a disconnected stream may reconnect and resume (0 = disabled)")
		maxPicture   = fs.Int("max-picture-bytes", 0, "declared picture payload size cap (0 = default 4 MiB)")
		drainTimeout = fs.Duration("drain-timeout", 15*time.Second, "graceful drain limit on shutdown")
		timescale    = fs.Float64("timescale", 1, "egress pacing speed multiplier (1 = real time)")
		journalDir   = fs.String("journal-dir", "", "session journal directory: admissions, watermarks, and completions survive a crash-restart (empty = no journal)")
		integrity    = fs.String("integrity", "fnv", "prefix-integrity mode every hello must declare: fnv or hmac-sha256:<keyfile>")
		quiet        = fs.Bool("quiet", false, "suppress per-session log lines")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	policy, err := mpegsmooth.ParsePolicy(*policySpec)
	if err != nil {
		return err
	}
	mode, key, err := mpegsmooth.ParseIntegrity(*integrity)
	if err != nil {
		return err
	}
	logf := func(format string, a ...any) { fmt.Fprintf(out, format+"\n", a...) }
	if *quiet {
		logf = nil
	}
	var jrnl *journal.Journal
	if *journalDir != "" {
		jrnl, err = journal.Open(journal.Config{Dir: *journalDir, Logf: logf})
		if err != nil {
			return err
		}
	}
	srv, err := server.New(server.Config{
		LinkRate:        *capacity,
		Policy:          policy,
		H:               *hFlag,
		QueueLen:        *queueLen,
		MaxStreams:      *maxStreams,
		ReadTimeout:     *readTimeout,
		WriteTimeout:    *writeTimeout,
		ResumeWindow:    *resumeWindow,
		MaxPictureBytes: *maxPicture,
		TimeScale:       *timescale,
		Journal:         jrnl,
		Integrity:       mode,
		IntegrityKey:    key,
		Logf:            logf,
	})
	if err != nil {
		// The server never adopted the journal; release its lock here.
		if jrnl != nil {
			jrnl.Close()
		}
		return err
	}
	if jrnl != nil {
		snap := srv.Snapshot()
		fmt.Fprintf(out, "smoothd: journal %s: recovered %d parked stream(s), %d completion tombstone(s)\n",
			*journalDir, snap.Streams.Recovered, snap.Streams.RecoveredTombstones)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	defer ln.Close()
	fmt.Fprintf(out, "smoothd: streams on %s, capacity %.0f bps, policy %s\n",
		ln.Addr(), *capacity, policy.Name())

	var opsSrv *http.Server
	if *opsAddr != "" {
		opsLn, err := net.Listen("tcp", *opsAddr)
		if err != nil {
			return err
		}
		opsSrv = &http.Server{Handler: srv.OpsHandler()}
		go opsSrv.Serve(opsLn)
		defer opsSrv.Close()
		fmt.Fprintf(out, "smoothd: ops on http://%s/stats\n", opsLn.Addr())
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintf(out, "smoothd: draining (up to %v)...\n", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	drainErr := srv.Shutdown(drainCtx)
	<-serveErr
	snap := srv.Snapshot()
	fmt.Fprintf(out, "smoothd: exit — %d admitted, %d rejected, %d completed, %d failed, %d resumed, %d hellos deduped, %d already-complete resumes, %d bits egressed\n",
		snap.Streams.Admitted, snap.Streams.Rejected, snap.Streams.Completed,
		snap.Streams.Failed, snap.Faults.Resumed, snap.Streams.HelloDeduped,
		snap.Streams.AlreadyComplete, snap.EgressedBits)
	if drainErr != nil && !errors.Is(drainErr, context.DeadlineExceeded) {
		return drainErr
	}
	if errors.Is(drainErr, context.DeadlineExceeded) {
		fmt.Fprintf(out, "smoothd: drain timed out; %d stream(s) cancelled\n", snap.Streams.Active)
	}
	return nil
}
