package netsim

import "mpegsmooth/internal/metrics"

// Source packetizes a fluid rate function into cells and injects them
// into a multiplexer: while the rate function has value r > 0, cells are
// emitted every CellBits/r seconds. The offset passed at construction
// shifts the whole emission in time, decorrelating the phases of
// otherwise identical sources.
//
// Emission times are computed in exact float seconds (t + CellBits/r at
// each step, identical arithmetic to the original simulator); the
// engine's ticks only order the events. A monotone breakpoint cursor
// replaces the old linear rescan of Rate.Times, so a run over a
// function with B breakpoints does O(B) cursor work total instead of
// O(B²) across idle-gap hops.
type Source struct {
	eng *Engine
	mux *Mux
	id  int

	times  []float64 // breakpoint times, pre-shifted by the offset
	values []float64
	end    float64

	cur     int     // last segment whose (shifted) start is <= probe time
	pending float64 // exact emission time of the scheduled event
	emitted int64
}

// NewSource creates a source and schedules its first cell. The id tags
// the source's cells for per-source loss attribution at the mux. The
// rate function's breakpoints are shifted right by offset once at
// construction so that all later time arithmetic happens in absolute
// simulation time (repeatedly subtracting the offset would accumulate
// float error).
func NewSource(eng *Engine, mux *Mux, rate *metrics.StepFunc, offset float64, id int) *Source {
	s := &Source{
		eng:    eng,
		mux:    mux,
		id:     id,
		values: rate.Values,
		end:    rate.End + offset,
	}
	if offset != 0 {
		s.times = make([]float64, len(rate.Times))
		for i, t := range rate.Times {
			s.times[i] = t + offset
		}
	} else {
		s.times = rate.Times
	}
	s.scheduleNext(s.times[0])
	return s
}

// Emitted returns the number of cells this source has injected.
func (s *Source) Emitted() int64 { return s.emitted }

// rateAt evaluates the shifted rate function at t, advancing the
// monotone cursor. Probe times are nondecreasing over a source's life,
// so the cursor never rewinds. Semantics match metrics.StepFunc.At.
func (s *Source) rateAt(t float64) float64 {
	if t < s.times[0] || t >= s.end {
		return 0
	}
	for s.cur+1 < len(s.times) && s.times[s.cur+1] <= t {
		s.cur++
	}
	return s.values[s.cur]
}

// nextBreak returns the first breakpoint strictly after t, scanning
// forward from the cursor (never from the start of the slice).
func (s *Source) nextBreak(t float64) (float64, bool) {
	for k := s.cur; k < len(s.times); k++ {
		if s.times[k] > t {
			return s.times[k], true
		}
	}
	return 0, false
}

// scheduleNext schedules the next cell at or after time t.
func (s *Source) scheduleNext(t float64) {
	for {
		if s.rateAt(t) > 0 {
			s.pending = t
			s.eng.Schedule(s.eng.TickAt(t), s)
			return
		}
		next, ok := s.nextBreak(t)
		if !ok {
			return // rate function exhausted: source done
		}
		t = next
	}
}

// Fire emits one cell (the Source is its own emission event; exactly
// one is outstanding while the rate function has support left).
func (s *Source) Fire(Tick) {
	t := s.pending
	r := s.rateAt(t)
	if r <= 0 {
		s.scheduleNext(t)
		return
	}
	s.mux.Arrive(s.id, t)
	s.emitted++
	s.scheduleNext(t + CellBits/r)
}
