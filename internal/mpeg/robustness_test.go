package mpeg

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mpegsmooth/internal/video"
)

// The paper's Section 2 closes with the observation that a decoder
// recovers from bitstream errors by skipping to the next slice or
// picture start code ("One or more slices would be missing from the
// picture being decoded"). These tests drive that machinery hard: no
// input, however mangled, may panic the decoder, and slice-local damage
// must stay slice-local.

func encodeShortSequence(t testing.TB, seed int64) (*EncodedSequence, []*video.Frame) {
	t.Helper()
	frames := testFrames(t, 64, 48, 9, seed)
	enc, err := NewEncoder(DefaultConfig(64, 48, GOP{M: 3, N: 9}))
	if err != nil {
		t.Fatal(err)
	}
	seq, err := enc.EncodeSequence(frames)
	if err != nil {
		t.Fatal(err)
	}
	return seq, frames
}

// TestResilientDecoderNeverPanics: random byte mutations anywhere in a
// valid stream.
func TestResilientDecoderNeverPanics(t *testing.T) {
	seq, _ := encodeShortSequence(t, 21)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		data := append([]byte(nil), seq.Data...)
		for k := rng.Intn(16) + 1; k > 0; k-- {
			data[rng.Intn(len(data))] ^= byte(rng.Intn(255) + 1)
		}
		dec := NewDecoder()
		dec.Resilient = true
		// Any outcome except a panic is acceptable; corruption may land
		// in headers the resilient path cannot conceal.
		out, err := dec.Decode(data)
		_ = out
		_ = err
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestDecoderOnRandomGarbage: completely random bytes must error, not
// panic, in both strict and resilient modes.
func TestDecoderOnRandomGarbage(t *testing.T) {
	f := func(seed int64, n uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		data := make([]byte, int(n)%4096)
		rng.Read(data)
		if _, err := NewDecoder().Decode(data); err == nil {
			// Random bytes parsing as a full valid sequence is
			// effectively impossible; treat success as suspicious but
			// not a failure (the property is "no panic").
			t.Logf("seed %d: garbage decoded cleanly!?", seed)
		}
		dec := NewDecoder()
		dec.Resilient = true
		dec.Decode(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestInspectOnRandomGarbage: the start-code walker must also be total.
func TestInspectOnRandomGarbage(t *testing.T) {
	f := func(seed int64, n uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		data := make([]byte, int(n)%4096)
		rng.Read(data)
		Inspect(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestSliceDamageStaysLocal: corrupting one slice's payload leaves every
// OTHER picture decodable with good fidelity.
func TestSliceDamageStaysLocal(t *testing.T) {
	seq, frames := encodeShortSequence(t, 23)
	// Find a B picture (nothing references it, so damage cannot
	// propagate) and corrupt payload bytes in its middle.
	var target PictureInfo
	for _, p := range seq.Pictures {
		if p.Type == TypeB {
			target = p
			break
		}
	}
	if target.Bits == 0 {
		t.Fatal("no B picture found")
	}
	data := append([]byte(nil), seq.Data...)
	mid := target.BitOffset/8 + target.Bits/16
	for i := int64(0); i < 4; i++ {
		data[mid+i] ^= 0xA5
	}
	dec := NewDecoder()
	dec.Resilient = true
	out, err := dec.Decode(data)
	if err != nil {
		t.Fatalf("resilient decode failed: %v", err)
	}
	if len(out.Frames) != len(frames) {
		t.Fatalf("got %d frames, want %d", len(out.Frames), len(frames))
	}
	for i, f := range out.Frames {
		if i == target.DisplayIdx {
			continue // the damaged picture may be concealed arbitrarily
		}
		p, err := video.PSNR(frames[i], f)
		if err != nil {
			t.Fatal(err)
		}
		if p < 20 {
			t.Errorf("picture %d degraded to %.1f dB by damage in picture %d", i, p, target.DisplayIdx)
		}
	}
}

// TestTruncatedStreams: every prefix of a valid stream must decode (in
// resilient mode) without panicking.
func TestTruncatedStreams(t *testing.T) {
	seq, _ := encodeShortSequence(t, 29)
	step := len(seq.Data)/50 + 1
	for cut := 0; cut < len(seq.Data); cut += step {
		dec := NewDecoder()
		dec.Resilient = true
		dec.Decode(seq.Data[:cut]) // must not panic
	}
}
