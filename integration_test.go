package mpegsmooth

// Cross-subsystem integration tests: each walks a complete pipeline
// through the public API and checks the invariants that must chain
// across module boundaries.

import (
	"context"
	"math/rand"
	"net"
	"testing"
	"time"
)

// TestPipelineMarkovToNetwork: Markov-modulated source → smoothing →
// VBV analysis → policer conformance → multiplexer, invariants intact at
// every stage.
func TestPipelineMarkovToNetwork(t *testing.T) {
	tr, err := GenerateMarkovTrace(MarkovConfig{
		Name:  "integration",
		GOP:   GOP{M: 3, N: 9},
		IBase: 180_000, PBase: 80_000, BBase: 25_000,
		States: []MarkovState{
			{Name: "calm", Complexity: 0.7, Motion: 0.3, MeanDwell: 45},
			{Name: "busy", Complexity: 1.0, Motion: 1.1, MeanDwell: 45},
		},
		Pictures: 270,
		Seed:     5,
	})
	if err != nil {
		t.Fatal(err)
	}

	sched, err := Smooth(tr, Config{K: 1, H: tr.GOP.N, D: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(sched); err != nil {
		t.Fatal(err)
	}

	// VBV: the decoder start-up the stream demands is within the bound.
	a, err := AnalyzeVBV(sched)
	if err != nil {
		t.Fatal(err)
	}
	if a.StartupDelay > 0.2+1e-9 {
		t.Fatalf("startup %.4f exceeds D", a.StartupDelay)
	}
	if err := CheckVBV(sched, a.StartupDelay, a.PeakBuffer); err != nil {
		t.Fatal(err)
	}

	// Policer: the schedule conforms to its own declarations.
	p, err := NewPolicer(4 * CellBits)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < tr.Len(); j++ {
		if err := p.SetRate(sched.Start[j], sched.Rates[j]); err != nil {
			t.Fatal(err)
		}
		bits, tm := float64(tr.Sizes[j]), sched.Start[j]
		for bits > 0 {
			cell := float64(CellBits)
			if bits < cell {
				cell = bits
			}
			ok, err := p.Offer(tm, cell)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatalf("picture %d non-conforming against own declaration", j)
			}
			bits -= cell
			tm += cell / sched.Rates[j]
		}
	}

	// Multiplexer: the smoothed stream rides a link with modest headroom
	// without loss.
	rf, err := sched.RateFunc()
	if err != nil {
		t.Fatal(err)
	}
	st, err := RunMux(MuxRunConfig{
		Rates:       []*StepFunc{rf},
		LinkRate:    rf.Max() * 1.02,
		BufferCells: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Lost != 0 {
		t.Fatalf("smoothed stream lost %d cells under its own peak", st.Lost)
	}
}

// TestPipelineCodecToTransport: synthetic video → codec → inspect →
// live smoothing → paced TCP transport → receiver integrity.
func TestPipelineCodecToTransport(t *testing.T) {
	synth, err := NewSynthesizer(BackyardVideoScript(64, 48, 18, 3))
	if err != nil {
		t.Fatal(err)
	}
	var frames []*Frame
	for !synth.Done() {
		frames = append(frames, synth.Next())
	}
	gop := GOP{M: 3, N: 9}
	enc, err := NewEncoder(DefaultEncoderConfig(64, 48, gop))
	if err != nil {
		t.Fatal(err)
	}
	seq, err := enc.EncodeSequence(frames)
	if err != nil {
		t.Fatal(err)
	}
	info, err := InspectStream(seq.Data)
	if err != nil {
		t.Fatal(err)
	}
	sizes, err := info.SizesInDisplayOrder()
	if err != nil {
		t.Fatal(err)
	}

	// Live smoothing, picture by picture.
	live, err := NewLiveSmoother(1.0/30, gop, Config{K: 1, H: gop.N, D: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	var decisions []Decision
	for _, s := range sizes {
		ds, err := live.Push(s)
		if err != nil {
			t.Fatal(err)
		}
		decisions = append(decisions, ds...)
	}
	decisions = append(decisions, live.Close()...)
	if len(decisions) != len(sizes) {
		t.Fatalf("%d decisions for %d pictures", len(decisions), len(sizes))
	}

	// The offline schedule is identical; use it to drive the transport.
	tr, err := TraceFromPictureSizes("codec", 1.0/30, gop, sizes)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := Smooth(tr, Config{K: 1, H: gop.N, D: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range decisions {
		if d.Rate != sched.Rates[i] {
			t.Fatalf("live decision %d diverges", i)
		}
	}

	rng := rand.New(rand.NewSource(2))
	payloads := make([][]byte, tr.Len())
	for i, bits := range tr.Sizes {
		payloads[i] = make([]byte, (bits+7)/8)
		rng.Read(payloads[i])
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	connCh := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			connCh <- c
		}
	}()
	client, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	server := <-connCh
	defer server.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	go func() {
		s := &Sender{TimeScale: 100}
		s.Send(ctx, NewFrameWriter(client), sched, payloads)
	}()
	report, err := Receive(ctx, server)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Pictures) != tr.Len() {
		t.Fatalf("received %d pictures", len(report.Pictures))
	}
	for i, p := range report.Pictures {
		if p.Sum64 != PayloadSum64(payloads[i]) {
			t.Fatalf("picture %d corrupted in flight", i)
		}
	}
}
