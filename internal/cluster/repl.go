// Replication channel: the primary streams its journal's record feed
// to followers over a dedicated TCP listener, framed the same way as
// everything else in this codebase — CRC-checked, length-prefixed,
// corruption detected rather than decoded.
//
// Wire format: the follower opens with the "MSRP" magic and a hello
// frame naming itself; the primary answers with one snapshot frame and
// then a stream of record and heartbeat frames, while the follower
// sends ack frames back upstream on the same connection. Every frame is
//
//	type (1) | len (4) | payload | crc32 (4)
//
// where the CRC covers type|len|payload. Every primary→follower payload
// begins with the primary's 32-byte publish cursor (fencing epoch,
// active segment sequence, cumulative records, cumulative bytes), so
// the follower can report replication lag at any instant and detect a
// deposed primary by its stale epoch:
//
//	'h' hello      epoch | rank | follower name (follower → primary)
//	's' snapshot   cursor | segment image of the live state
//	'r' record     cursor | one journal record frame
//	'b' heartbeat  cursor only
//	'a' ack        epoch | acked publish sequence (follower → primary)
//
// Acks are cumulative: the follower acknowledges the highest primary
// publish sequence it has durably applied (snapshot base + records
// applied since — exact because the feed is in-order and gap-free: a
// dropped subscriber's channel closes and it resyncs from a fresh
// snapshot rather than skip records). The primary's quorum tracker
// holds admission/completion verdicts until enough ranks have acked.
//
// A follower that falls behind the feed buffer is dropped by the
// journal (its channel closes); it reconnects with jittered exponential
// backoff and resyncs from a fresh snapshot. A follower that stops
// hearing frames for FailoverTimeout concludes the primary is dead and
// tries to promote (see node.go). Epochs fence both directions: a
// primary that sees a higher epoch in a hello or ack demotes instead of
// split-braining, and a follower that sees a lower epoch than its
// journal's disconnects from the deposed primary.
package cluster

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"sync/atomic"
	"time"

	"mpegsmooth/internal/journal"
	"mpegsmooth/internal/transport"
)

var replMagic = []byte("MSRP")

const (
	replHello     byte = 'h'
	replSnapshot  byte = 's'
	replRecord    byte = 'r'
	replHeartbeat byte = 'b'
	replAck       byte = 'a'
)

// maxReplPayload bounds a replication payload during reads; the
// snapshot image is the only large one.
const maxReplPayload = 64 << 20

// maxFollowerName bounds the name portion of the hello payload.
const maxFollowerName = 128

// helloPrefix is the fixed hello header: epoch (8) | rank (4).
const helloPrefix = 12

// ackLen is the ack payload: epoch (8) | acked sequence (8).
const ackLen = 16

// cursorLen is the encoded size of a publish cursor:
// epoch (8) | segment seq (8) | records (8) | bytes (8).
const cursorLen = 32

func appendCursor(buf []byte, epoch uint64, o journal.Offsets) []byte {
	buf = binary.BigEndian.AppendUint64(buf, epoch)
	buf = binary.BigEndian.AppendUint64(buf, o.SegmentSeq)
	buf = binary.BigEndian.AppendUint64(buf, o.Records)
	return binary.BigEndian.AppendUint64(buf, o.Bytes)
}

func parseCursor(b []byte) (epoch uint64, o journal.Offsets, rest []byte, err error) {
	if len(b) < cursorLen {
		return 0, journal.Offsets{}, nil, fmt.Errorf("cluster: %d-byte payload shorter than its cursor", len(b))
	}
	return binary.BigEndian.Uint64(b[0:8]), journal.Offsets{
		SegmentSeq: binary.BigEndian.Uint64(b[8:16]),
		Records:    binary.BigEndian.Uint64(b[16:24]),
		Bytes:      binary.BigEndian.Uint64(b[24:32]),
	}, b[cursorLen:], nil
}

func writeReplFrame(w io.Writer, typ byte, payload []byte) error {
	buf := make([]byte, 0, 9+len(payload))
	buf = append(buf, typ)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, payload...)
	buf = binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	_, err := w.Write(buf)
	return err
}

// parseReplFrame decodes one frame from b, returning the frame type,
// payload, and total encoded size. It is the pure core of readReplFrame
// — and the fuzzer's entry point: arbitrary bytes must produce an error,
// never a panic or an over-read.
func parseReplFrame(b []byte) (byte, []byte, int, error) {
	if len(b) < 9 {
		return 0, nil, 0, io.ErrUnexpectedEOF
	}
	n := int(binary.BigEndian.Uint32(b[1:5]))
	if n > maxReplPayload {
		return 0, nil, 0, fmt.Errorf("cluster: replication frame declares %d-byte payload", n)
	}
	total := 9 + n
	if len(b) < total {
		return 0, nil, 0, io.ErrUnexpectedEOF
	}
	sum := crc32.ChecksumIEEE(b[:5+n])
	if got := binary.BigEndian.Uint32(b[5+n : total]); got != sum {
		return 0, nil, 0, fmt.Errorf("cluster: replication frame crc %08x, want %08x", got, sum)
	}
	return b[0], b[5 : 5+n], total, nil
}

func readReplFrame(r io.Reader) (byte, []byte, error) {
	var head [5]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		return 0, nil, err
	}
	n := int(binary.BigEndian.Uint32(head[1:5]))
	if n > maxReplPayload {
		return 0, nil, fmt.Errorf("cluster: replication frame declares %d-byte payload", n)
	}
	rest := make([]byte, n+4)
	if _, err := io.ReadFull(r, rest); err != nil {
		return 0, nil, err
	}
	sum := crc32.ChecksumIEEE(head[:])
	sum = crc32.Update(sum, crc32.IEEETable, rest[:n])
	if got := binary.BigEndian.Uint32(rest[n:]); got != sum {
		return 0, nil, fmt.Errorf("cluster: replication frame crc %08x, want %08x", got, sum)
	}
	return head[0], rest[:n], nil
}

// publishLoop is the primary's replication acceptor: one goroutine per
// attached follower. It exits when the replication listener closes.
func (n *Node) publishLoop(ln net.Listener, jrnl *journal.Journal) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			n.serveFollower(conn, jrnl)
		}()
	}
}

// serveFollower streams the journal feed to one follower: handshake,
// snapshot, then records and heartbeats until either side dies, while a
// reader goroutine feeds the follower's acks into the quorum tracker. A
// write failure or feed overflow drops the follower; it reconnects and
// resyncs from a fresh snapshot.
func (n *Node) serveFollower(conn net.Conn, jrnl *journal.Journal) {
	defer conn.Close()
	n.trackFollowerConn(conn)
	defer n.untrackFollowerConn(conn)
	conn.SetReadDeadline(time.Now().Add(n.cfg.FailoverTimeout))
	var magic [4]byte
	if _, err := io.ReadFull(conn, magic[:]); err != nil || string(magic[:]) != string(replMagic) {
		n.logf("cluster: %s: replication handshake from %s without magic", n.id(), conn.RemoteAddr())
		return
	}
	typ, payload, err := readReplFrame(conn)
	if err != nil || typ != replHello ||
		len(payload) <= helloPrefix || len(payload) > helloPrefix+maxFollowerName {
		n.logf("cluster: %s: bad replication hello from %s: %v", n.id(), conn.RemoteAddr(), err)
		return
	}
	helloEpoch := binary.BigEndian.Uint64(payload[0:8])
	rank := int(binary.BigEndian.Uint32(payload[8:12]))
	name := string(payload[helloPrefix:])
	myEpoch := n.epoch.Load()
	if helloEpoch > myEpoch {
		// The follower's journal has witnessed a higher term than ours:
		// another primary promoted while we thought we were serving.
		// Refuse the attachment and stand down rather than split-brain.
		n.logf("cluster: %s: follower %s carries epoch %d > our %d: we are deposed",
			n.id(), name, helloEpoch, myEpoch)
		go n.demote(fmt.Sprintf("follower %s at epoch %d", name, helloEpoch))
		return
	}

	snap, at, frames, cancel, err := jrnl.Follow(n.cfg.FollowBuffer)
	if err != nil {
		return
	}
	defer cancel()
	pl := make([]byte, 0, cursorLen+len(snap))
	pl = appendCursor(pl, myEpoch, at)
	pl = append(pl, snap...)
	conn.SetWriteDeadline(time.Now().Add(n.cfg.FailoverTimeout))
	if err := writeReplFrame(conn, replSnapshot, pl); err != nil {
		return
	}
	atomic.AddInt64(&n.followers, 1)
	defer atomic.AddInt64(&n.followers, -1)
	if q := n.quorumGate(); q != nil {
		q.attach(name, rank)
		defer q.detach(name)
	}
	n.logf("cluster: %s: follower %s (rank %d, epoch %d) attached from %s (snapshot %d bytes at record %d)",
		n.id(), name, rank, helloEpoch, conn.RemoteAddr(), len(snap), at.Records)

	// Ack reader: the upstream half of the connection. It owns all
	// reads after the handshake and exits when the connection dies
	// (this function's deferred Close unblocks it).
	conn.SetReadDeadline(time.Time{})
	ackDone := make(chan struct{})
	go func() {
		defer close(ackDone)
		br := bufio.NewReaderSize(conn, 4<<10)
		for {
			typ, payload, err := readReplFrame(br)
			if err != nil {
				return
			}
			if typ != replAck || len(payload) != ackLen {
				n.logf("cluster: %s: unexpected upstream frame %#02x from follower %s", n.id(), typ, name)
				return
			}
			ackEpoch := binary.BigEndian.Uint64(payload[0:8])
			ackSeq := binary.BigEndian.Uint64(payload[8:16])
			if ackEpoch > myEpoch {
				n.logf("cluster: %s: follower %s acked at epoch %d > our %d: we are deposed",
					n.id(), name, ackEpoch, myEpoch)
				go n.demote(fmt.Sprintf("ack from %s at epoch %d", name, ackEpoch))
				return
			}
			if q := n.quorumGate(); q != nil {
				q.ack(name, ackSeq)
			}
		}
	}()

	tick := time.NewTicker(n.cfg.HeartbeatInterval)
	defer tick.Stop()
	var buf []byte
	for {
		select {
		case frame, ok := <-frames:
			if !ok {
				// The feed dropped this subscriber (it fell behind the
				// buffer) or the journal closed. Either way the follower
				// reconnects and resyncs.
				atomic.AddInt64(&n.followerDrops, 1)
				n.logf("cluster: %s: follower %s dropped from the feed (lagged or journal closed)", n.id(), name)
				return
			}
			buf = appendCursor(buf[:0], myEpoch, jrnl.FollowOffsets())
			buf = append(buf, frame...)
			conn.SetWriteDeadline(time.Now().Add(n.cfg.FailoverTimeout))
			if err := writeReplFrame(conn, replRecord, buf); err != nil {
				atomic.AddInt64(&n.followerDrops, 1)
				return
			}
		case <-tick.C:
			buf = appendCursor(buf[:0], myEpoch, jrnl.FollowOffsets())
			conn.SetWriteDeadline(time.Now().Add(n.cfg.FailoverTimeout))
			if err := writeReplFrame(conn, replHeartbeat, buf); err != nil {
				atomic.AddInt64(&n.followerDrops, 1)
				return
			}
		case <-ackDone:
			return
		case <-n.ctx.Done():
			return
		}
	}
}

// followLoop is the follower's life: stay attached to the shard's
// primary, replay its feed into the standby journal, and — when the
// primary goes silent past FailoverTimeout — try to promote. Reconnect
// attempts back off with the transport's jittered exponential schedule
// (a refused connect during a primary restart is routine, not
// permanent); a successful attachment resets the schedule. It returns
// when the node is stopped or has become the primary.
func (n *Node) followLoop() {
	defer n.wg.Done()
	n.noteHeard()
	backoff := transport.Backoff{
		Base: n.cfg.DialTimeout / 8,
		Max:  n.cfg.FailoverTimeout / 2,
	}
	attempt := 0
	for n.ctx.Err() == nil {
		conn, err := n.dialTCP(n.self.ReplAddr)
		if err == nil {
			attempt = 0
			n.setReplConn(conn)
			err = n.streamFromPrimary(conn)
			n.setReplConn(nil)
			conn.Close()
			if n.ctx.Err() == nil {
				n.logf("cluster: %s: replication stream ended: %v", n.id(), err)
			}
		} else {
			atomic.AddInt64(&n.dialRetries, 1)
		}
		if n.ctx.Err() != nil {
			return
		}
		if time.Since(n.lastHeard()) >= n.cfg.FailoverTimeout {
			if n.tryPromote() {
				return
			}
		}
		attempt++
		n.sleep(backoff.Delay(attempt, n.rng))
	}
}

// streamFromPrimary drives one attached replication connection: apply
// snapshots and records into the standby journal, acknowledge every
// durable apply upstream, track the primary's cursor, and refresh the
// liveness clock on every frame. A cursor whose epoch is below the
// standby journal's own is a deposed primary: disconnect rather than
// regress onto revoked authority.
func (n *Node) streamFromPrimary(conn net.Conn) error {
	jrnl := n.standby()
	if jrnl == nil {
		return fmt.Errorf("cluster: no standby journal")
	}
	hello := make([]byte, 0, helloPrefix+len(n.id()))
	hello = binary.BigEndian.AppendUint64(hello, jrnl.Epoch())
	hello = binary.BigEndian.AppendUint32(hello, uint32(n.cfg.Rank))
	hello = append(hello, n.id()...)
	conn.SetWriteDeadline(time.Now().Add(n.cfg.FailoverTimeout))
	if _, err := conn.Write(replMagic); err != nil {
		return err
	}
	if err := writeReplFrame(conn, replHello, hello); err != nil {
		return err
	}
	n.setConnected(true)
	defer n.setConnected(false)
	sendAck := func() error {
		ack := make([]byte, 0, ackLen)
		ack = binary.BigEndian.AppendUint64(ack, jrnl.Epoch())
		ack = binary.BigEndian.AppendUint64(ack, n.repl.cursorSeq())
		conn.SetWriteDeadline(time.Now().Add(n.cfg.FailoverTimeout))
		return writeReplFrame(conn, replAck, ack)
	}
	br := bufio.NewReaderSize(conn, 64<<10)
	// Records drain into a batch: when the primary has several frames in
	// flight (its own group commit released a burst, or this follower
	// briefly fell behind), every record already buffered locally joins
	// one journal.AppendRecords call — one standby fsync — acknowledged
	// with a single cumulative ack instead of an ack per record.
	type appliedRec struct {
		cursor journal.Offsets
		kind   byte
		size   int
	}
	var batch []journal.Record
	var applied []appliedRec
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		if err := jrnl.AppendRecords(batch); err != nil {
			return fmt.Errorf("cluster: applying %d replicated records: %w", len(batch), err)
		}
		for _, a := range applied {
			n.repl.recordApplied(a.cursor, a.kind, a.size)
		}
		batch, applied = batch[:0], applied[:0]
		if err := sendAck(); err != nil {
			return fmt.Errorf("cluster: acking records: %w", err)
		}
		return nil
	}
	for {
		conn.SetReadDeadline(time.Now().Add(n.cfg.FailoverTimeout))
		typ, payload, err := readReplFrame(br)
		if err != nil {
			return err
		}
		n.noteHeard()
		epoch, cursor, rest, err := parseCursor(payload)
		if err != nil {
			return err
		}
		if known := jrnl.Epoch(); epoch < known {
			return fmt.Errorf("cluster: primary at epoch %d but journal has witnessed %d (deposed primary)",
				epoch, known)
		}
		switch typ {
		case replSnapshot:
			if err := flush(); err != nil {
				return err
			}
			recs, valid, scanErr := journal.ScanSegment(rest)
			if scanErr != nil || valid != len(rest) {
				return fmt.Errorf("cluster: torn replication snapshot (%d of %d bytes valid): %v",
					valid, len(rest), scanErr)
			}
			if err := jrnl.ResetTo(recs); err != nil {
				return fmt.Errorf("cluster: resync into standby journal: %w", err)
			}
			n.repl.resync(cursor)
			if err := sendAck(); err != nil {
				return fmt.Errorf("cluster: acking snapshot: %w", err)
			}
			n.logf("cluster: %s: resynced from snapshot (%d records, primary at record %d, epoch %d)",
				n.id(), len(recs), cursor.Records, epoch)
		case replRecord:
			rec, size, perr := journal.ParseFrame(rest)
			if perr != nil || size != len(rest) {
				return fmt.Errorf("cluster: torn replicated record (%d of %d bytes): %v",
					size, len(rest), perr)
			}
			batch = append(batch, rec)
			applied = append(applied, appliedRec{cursor: cursor, kind: rec.Kind, size: size})
			if br.Buffered() == 0 {
				// Nothing else already delivered: commit what we have. With
				// frames still buffered, keep draining — they ride this
				// batch's fsync.
				if err := flush(); err != nil {
					return err
				}
			}
		case replHeartbeat:
			if err := flush(); err != nil {
				return err
			}
			n.repl.heartbeat(cursor)
		default:
			return fmt.Errorf("cluster: unknown replication frame type %#02x", typ)
		}
	}
}
