// Package quant implements MPEG-1-style quantization of DCT coefficient
// blocks.
//
// Quantization is the only lossy step in the coding chain (run-length and
// entropy coding are lossless). Low-frequency coefficients are quantized
// more finely than high-frequency coefficients via a per-position weight
// matrix, and the whole matrix is scaled by a per-slice (or per-macroblock)
// quantizer scale in 1..31. A coarser scale lowers the bit rate at the
// expense of visual quality — the lossy rate-control knob that Section 3.1
// of Lam/Chow/Yau argues must NOT be used to flatten I/B picture size
// differences.
package quant

import "mpegsmooth/internal/mpeg/dct"

// ScaleMin and ScaleMax bound the quantizer scale.
const (
	ScaleMin = 1
	ScaleMax = 31
)

// Matrix is a per-coefficient weight matrix in row-major order.
type Matrix [64]int32

// DefaultIntra is the MPEG-1 default intra quantizer matrix: fine
// quantization at DC and low frequencies, progressively coarser toward
// high frequencies.
var DefaultIntra = Matrix{
	8, 16, 19, 22, 26, 27, 29, 34,
	16, 16, 22, 24, 27, 29, 34, 37,
	19, 22, 26, 27, 29, 34, 34, 38,
	22, 22, 26, 27, 29, 34, 37, 40,
	22, 26, 27, 29, 32, 35, 40, 48,
	26, 27, 29, 32, 35, 40, 48, 58,
	26, 27, 29, 34, 38, 46, 56, 69,
	27, 29, 35, 38, 46, 56, 69, 83,
}

// DefaultNonIntra is the MPEG-1 default non-intra matrix: flat 16s, because
// prediction-error blocks contain predominantly high frequencies and can be
// quantized uniformly (and more coarsely) without blocking artifacts.
var DefaultNonIntra = Matrix{
	16, 16, 16, 16, 16, 16, 16, 16,
	16, 16, 16, 16, 16, 16, 16, 16,
	16, 16, 16, 16, 16, 16, 16, 16,
	16, 16, 16, 16, 16, 16, 16, 16,
	16, 16, 16, 16, 16, 16, 16, 16,
	16, 16, 16, 16, 16, 16, 16, 16,
	16, 16, 16, 16, 16, 16, 16, 16,
	16, 16, 16, 16, 16, 16, 16, 16,
}

// clampScale limits a quantizer scale to the legal range.
func clampScale(scale int32) int32 {
	if scale < ScaleMin {
		return ScaleMin
	}
	if scale > ScaleMax {
		return ScaleMax
	}
	return scale
}

// Intra quantizes an intra-coded coefficient block in place of dst.
// The DC coefficient (index 0) uses a fixed divisor of 8, matching MPEG-1's
// 8-bit DC precision; AC coefficients divide by scale*matrix/8 with
// rounding toward zero offsets chosen to keep the round trip centred.
func Intra(dst *[64]int32, src *dct.Block, m *Matrix, scale int32) {
	scale = clampScale(scale)
	dst[0] = div(src[0], 8)
	for i := 1; i < 64; i++ {
		d := 2 * scale * m[i] / 16
		if d < 1 {
			d = 1
		}
		dst[i] = div(src[i], d)
	}
}

// DequantIntra reverses Intra into dst.
func DequantIntra(dst *dct.Block, src *[64]int32, m *Matrix, scale int32) {
	scale = clampScale(scale)
	dst[0] = src[0] * 8
	for i := 1; i < 64; i++ {
		d := 2 * scale * m[i] / 16
		if d < 1 {
			d = 1
		}
		dst[i] = src[i] * d
	}
}

// NonIntra quantizes a prediction-error coefficient block. Unlike the
// intra path it truncates toward zero, giving a dead zone of a full
// quantizer step around zero — as in MPEG-1. The dead zone stops the
// encoder from spending bits re-coding the reference picture's own
// quantization noise in every P and B picture.
func NonIntra(dst *[64]int32, src *dct.Block, m *Matrix, scale int32) {
	scale = clampScale(scale)
	for i := 0; i < 64; i++ {
		d := 2 * scale * m[i] / 16
		if d < 1 {
			d = 1
		}
		dst[i] = src[i] / d // Go integer division truncates toward zero
	}
}

// DequantNonIntra reverses NonIntra into dst. Nonzero levels reconstruct
// at the midpoint of their quantization bin (MPEG-1's (2·level±1)·step/2
// rule), compensating for the truncating quantizer.
func DequantNonIntra(dst *dct.Block, src *[64]int32, m *Matrix, scale int32) {
	scale = clampScale(scale)
	for i := 0; i < 64; i++ {
		d := 2 * scale * m[i] / 16
		if d < 1 {
			d = 1
		}
		switch {
		case src[i] > 0:
			dst[i] = src[i]*d + d/2
		case src[i] < 0:
			dst[i] = src[i]*d - d/2
		default:
			dst[i] = 0
		}
	}
}

// div divides with rounding to nearest, ties away from zero.
func div(v, d int32) int32 {
	if v >= 0 {
		return (v + d/2) / d
	}
	return -((-v + d/2) / d)
}
