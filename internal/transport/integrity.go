package transport

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
)

// IntegrityMode selects the prefix-verification hash a stream session
// negotiates in its hello. The server computes the running hash over
// every accepted payload in index order and echoes it in
// Verdict.PrefixFNV; the sender verifies its own prefix before
// (re)playing anything.
//
// FNV-1a (the default, and the only pre-negotiation behaviour) detects
// accidental divergence — corruption the CRCs missed, replayed bytes
// from the wrong stream. HMAC-SHA256 additionally resists an
// adversarial peer: without the shared key, a forged AlreadyComplete or
// resume verdict cannot present a matching prefix tag.
type IntegrityMode byte

const (
	// IntegrityFNV: running FNV-1a over accepted payloads (default).
	IntegrityFNV IntegrityMode = 0
	// IntegrityHMAC: a chained HMAC-SHA256 — chain₀ = HMAC(key, "init"),
	// chainₙ = HMAC(key, chainₙ₋₁ ‖ payloadₙ) — whose 32-byte chain
	// value is the running state. The wire tag is the chain's first 8
	// bytes. Chaining (rather than one long-running MAC) makes the state
	// explicit and restorable, which the server's crash journal needs.
	IntegrityHMAC IntegrityMode = 1
)

// String names the mode (the -integrity flag spelling).
func (m IntegrityMode) String() string {
	switch m {
	case IntegrityFNV:
		return "fnv"
	case IntegrityHMAC:
		return "hmac-sha256"
	}
	return fmt.Sprintf("IntegrityMode(%d)", byte(m))
}

// Valid reports whether the mode is one a hello may carry.
func (m IntegrityMode) Valid() bool { return m <= IntegrityHMAC }

// PrefixHash is a resumable running hash over a stream's accepted
// payload prefix. State/Restore expose the full internal state so a
// crash-recovery journal can persist the watermark hash and resume it
// bit-exactly in a fresh process.
type PrefixHash interface {
	// Absorb appends one payload to the hashed prefix.
	Absorb(payload []byte)
	// Sum64 returns the 8-byte wire tag of the current prefix.
	Sum64() uint64
	// State returns the full internal state (8 bytes for FNV, 32 for the
	// HMAC chain).
	State() []byte
	// AppendState appends the internal state to dst and returns the
	// extended slice — State without the allocation, for per-picture
	// callers that reuse a scratch buffer.
	AppendState(dst []byte) []byte
	// Restore replaces the internal state with one State produced.
	Restore(state []byte) error
	// Mode identifies the negotiated algorithm.
	Mode() IntegrityMode
}

// NewPrefixHash creates the running hash for a mode. IntegrityHMAC
// requires a non-empty key; IntegrityFNV ignores it.
func NewPrefixHash(mode IntegrityMode, key []byte) (PrefixHash, error) {
	switch mode {
	case IntegrityFNV:
		return &fnvPrefix{state: fnvOffset}, nil
	case IntegrityHMAC:
		if len(key) == 0 {
			return nil, fmt.Errorf("transport: integrity mode %s requires a key", mode)
		}
		h := &hmacPrefix{key: append([]byte(nil), key...)}
		mac := hmac.New(sha256.New, h.key)
		mac.Write([]byte("mpegsmooth-prefix-init"))
		h.chain = mac.Sum(nil)
		return h, nil
	}
	return nil, fmt.Errorf("transport: unknown integrity mode %d", mode)
}

// PrefixSum computes the wire tag of payloads[:n] from scratch — the
// sender-side mirror of the server's running hash at watermark n.
func PrefixSum(mode IntegrityMode, key []byte, payloads [][]byte, n int) (uint64, error) {
	h, err := NewPrefixHash(mode, key)
	if err != nil {
		return 0, err
	}
	for _, p := range payloads[:n] {
		h.Absorb(p)
	}
	return h.Sum64(), nil
}

// fnvOffset is the FNV-1a 64-bit offset basis (the hash of the empty
// prefix), matching hash/fnv.New64a.
const fnvOffset = 14695981039346656037

// fnvPrefix implements PrefixHash with FNV-1a, whose internal state IS
// its 64-bit sum — trivially resumable.
type fnvPrefix struct {
	state uint64
}

// fnvPrime is the FNV-1a 64-bit prime. hash/fnv does not expose
// seeding from a prior state, so Absorb applies the FNV-1a step
// directly; TestFNVPrefixMatchesStdlib pins the equivalence.
const fnvPrime = 1099511628211

func (f *fnvPrefix) Absorb(payload []byte) {
	s := f.state
	for _, b := range payload {
		s ^= uint64(b)
		s *= fnvPrime
	}
	f.state = s
}

func (f *fnvPrefix) Sum64() uint64 { return f.state }

func (f *fnvPrefix) State() []byte {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], f.state)
	return buf[:]
}

func (f *fnvPrefix) AppendState(dst []byte) []byte {
	return binary.BigEndian.AppendUint64(dst, f.state)
}

func (f *fnvPrefix) Restore(state []byte) error {
	if len(state) != 8 {
		return fmt.Errorf("transport: fnv prefix state is %d bytes, want 8", len(state))
	}
	f.state = binary.BigEndian.Uint64(state)
	return nil
}

func (f *fnvPrefix) Mode() IntegrityMode { return IntegrityFNV }

// hmacPrefix implements PrefixHash with the chained HMAC-SHA256
// construction. The chain value commits to the whole prefix in order;
// forging a tag for a different prefix requires the key.
type hmacPrefix struct {
	key   []byte
	chain []byte // 32 bytes
}

func (h *hmacPrefix) Absorb(payload []byte) {
	mac := hmac.New(sha256.New, h.key)
	mac.Write(h.chain)
	mac.Write(payload)
	h.chain = mac.Sum(h.chain[:0])
}

func (h *hmacPrefix) Sum64() uint64 { return binary.BigEndian.Uint64(h.chain[:8]) }

func (h *hmacPrefix) State() []byte { return append([]byte(nil), h.chain...) }

func (h *hmacPrefix) AppendState(dst []byte) []byte { return append(dst, h.chain...) }

func (h *hmacPrefix) Restore(state []byte) error {
	if len(state) != sha256.Size {
		return fmt.Errorf("transport: hmac prefix state is %d bytes, want %d", len(state), sha256.Size)
	}
	h.chain = append(h.chain[:0], state...)
	return nil
}

func (h *hmacPrefix) Mode() IntegrityMode { return IntegrityHMAC }
