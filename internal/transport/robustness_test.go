package transport

import (
	"bytes"
	"context"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestReadMessageOnRandomBytes: the wire parser must be total — any byte
// stream yields a message or an error, never a panic, and payload
// allocation is bounded by the announced-size check.
func TestReadMessageOnRandomBytes(t *testing.T) {
	f := func(seed int64, n uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		data := make([]byte, int(n)%2048)
		rng.Read(data)
		r := bytes.NewReader(data)
		for {
			_, err := ReadMessage(r)
			if err != nil {
				return true
			}
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestReceiveOnRandomBytes: the full receive loop is equally total.
func TestReceiveOnRandomBytes(t *testing.T) {
	f := func(seed int64, n uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		data := make([]byte, int(n)%2048)
		rng.Read(data)
		Receive(context.Background(), bytes.NewReader(data))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestCorruptedSessionStream: flip bytes in a valid session recording;
// the receiver must stop with an error or complete, never hang or panic.
func TestCorruptedSessionStream(t *testing.T) {
	sched, payloads := testSchedule(t, 18)
	var buf bytes.Buffer
	s := &Sender{TimeScale: 1e6} // effectively unpaced
	if err := s.Send(context.Background(), &buf, sched, payloads); err != nil {
		t.Fatal(err)
	}
	clean := buf.Bytes()
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 100; trial++ {
		data := append([]byte(nil), clean...)
		for k := rng.Intn(8) + 1; k > 0; k-- {
			data[rng.Intn(len(data))] ^= byte(rng.Intn(255) + 1)
		}
		Receive(context.Background(), bytes.NewReader(data))
	}
}
