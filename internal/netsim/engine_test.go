package netsim

import (
	"math/rand"
	"testing"
)

// TestEngineProperty schedules 10k events at random ticks spanning every
// wheel level plus the overflow list and checks the engine's ordering
// contract: events fire in nondecreasing tick order, and events sharing
// a tick fire in schedule (FIFO) order.
func TestEngineProperty(t *testing.T) {
	const n = 10_000
	rng := rand.New(rand.NewSource(7))
	e := NewEngine(1)
	type firing struct {
		tick Tick
		seq  int
	}
	var fired []firing
	for i := 0; i < n; i++ {
		var tick Tick
		switch rng.Intn(4) {
		case 0: // level 0: within the first block
			tick = Tick(rng.Intn(wheelSlots))
		case 1: // level 1–2 territory
			tick = Tick(rng.Int63n(int64(wheelSlots) * int64(wheelSlots) * 8))
		case 2: // level 3 territory
			tick = Tick(rng.Int63n(int64(1) << 47))
		default: // beyond the wheel span: overflow list
			tick = Tick(int64(1)<<48 + rng.Int63n(int64(1)<<50))
		}
		seq := i
		e.Schedule(tick, EventFunc(func(now Tick) {
			if now != tick {
				t.Fatalf("event scheduled for %d fired at %d", tick, now)
			}
			fired = append(fired, firing{tick, seq})
		}))
	}
	if got := e.Run(Tick(1) << 62); got != n {
		t.Fatalf("fired %d of %d events", got, n)
	}
	for i := 1; i < len(fired); i++ {
		a, b := fired[i-1], fired[i]
		if b.tick < a.tick {
			t.Fatalf("tick order violated at %d: %d after %d", i, b.tick, a.tick)
		}
		if b.tick == a.tick && b.seq < a.seq {
			t.Fatalf("same-tick FIFO violated at tick %d: seq %d after %d", b.tick, b.seq, a.seq)
		}
	}
}

// TestEngineSameTickReschedule checks that an event scheduling another
// event for the current tick fires it within the same tick, after all
// previously scheduled same-tick events.
func TestEngineSameTickReschedule(t *testing.T) {
	e := NewEngine(1)
	var got []int
	e.Schedule(5, EventFunc(func(now Tick) {
		got = append(got, 1)
		e.Schedule(now, EventFunc(func(Tick) { got = append(got, 3) }))
	}))
	e.Schedule(5, EventFunc(func(Tick) { got = append(got, 2) }))
	e.Schedule(6, EventFunc(func(Tick) { got = append(got, 4) }))
	if n := e.Run(10); n != 4 {
		t.Fatalf("fired %d events", n)
	}
	for i, want := range []int{1, 2, 3, 4} {
		if got[i] != want {
			t.Fatalf("order %v, want [1 2 3 4]", got)
		}
	}
}

// TestEngineCascade drives events across level boundaries: an event in a
// far slot must cascade down and still fire at its exact tick, with
// intervening events fired in between.
func TestEngineCascade(t *testing.T) {
	e := NewEngine(1)
	ticks := []Tick{
		1,
		wheelSlots - 1,
		wheelSlots,     // level 1
		wheelSlots + 1, // same level-1 slot, later tick
		3 * wheelSlots * wheelSlots,                 // level 2
		5 * wheelSlots * wheelSlots * wheelSlots,    // level 3
		Tick(1)<<48 + 17,                            // overflow
		Tick(1)<<48 + 17 + wheelSlots*wheelSlots*11, // overflow, later
	}
	var got []Tick
	// Schedule in reverse to make insertion order disagree with fire order.
	for i := len(ticks) - 1; i >= 0; i-- {
		tk := ticks[i]
		e.Schedule(tk, EventFunc(func(now Tick) { got = append(got, now) }))
	}
	if n := e.Run(Tick(1) << 62); n != len(ticks) {
		t.Fatalf("fired %d of %d events", n, len(ticks))
	}
	for i, want := range ticks {
		if got[i] != want {
			t.Fatalf("fire sequence %v, want %v", got, ticks)
		}
	}
}

// TestEngineRecordsPooled verifies steady-state scheduling does not
// allocate: after warm-up, records come from the free list.
func TestEngineRecordsPooled(t *testing.T) {
	e := NewEngine(1)
	var next func(now Tick)
	count := 0
	next = func(now Tick) {
		count++
		if count < 1000 {
			e.Schedule(now+3, EventFunc(next))
		}
	}
	e.Schedule(0, EventFunc(next))
	allocs := testing.AllocsPerRun(1, func() {
		e.Run(Tick(1) << 40)
	})
	// One closure per event is allocated by the test itself (EventFunc
	// wrapping); the engine's own record churn must reuse the pool. Allow
	// the closure allocations but nothing superlinear.
	if allocs > 3000 {
		t.Fatalf("%v allocations for 1000 chained events", allocs)
	}
	if count < 1000 {
		t.Fatalf("chain stopped at %d", count)
	}
}

func TestEngineTickConversions(t *testing.T) {
	e := NewEngine(1e12)
	if tk := e.TickAt(1.5); tk != 1_500_000_000_000 {
		t.Fatalf("TickAt(1.5) = %d", tk)
	}
	if s := e.SecondsOf(2_000_000_000_000); s != 2 {
		t.Fatalf("SecondsOf = %v", s)
	}
	if e.NowSeconds() != 0 {
		t.Fatalf("NowSeconds at start = %v", e.NowSeconds())
	}
}

func TestEngineInvalidTickRate(t *testing.T) {
	for _, hz := range []float64{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewEngine(%v) should panic", hz)
				}
			}()
			NewEngine(hz)
		}()
	}
}
