package faultnet

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net"
	"syscall"
	"testing"
	"time"
)

// collect reads everything the wrapped writer pushes through a pipe:
// the returned bytes are what a peer would observe.
func collect(t *testing.T, nw *Network, chunks [][]byte) []byte {
	t.Helper()
	client, server := net.Pipe()
	wrapped := nw.Wrap(client)
	done := make(chan []byte, 1)
	go func() {
		var buf bytes.Buffer
		io.Copy(&buf, server)
		done <- buf.Bytes()
	}()
	for _, c := range chunks {
		if _, err := wrapped.Write(c); err != nil {
			t.Fatalf("write: %v", err)
		}
	}
	wrapped.Close()
	return <-done
}

func TestDeterministicCorruption(t *testing.T) {
	chunks := make([][]byte, 50)
	var clean bytes.Buffer
	for i := range chunks {
		chunks[i] = bytes.Repeat([]byte{byte(i)}, 16)
		clean.Write(chunks[i])
	}
	cfg := Config{Seed: 9, CorruptProb: 0.3}
	first := collect(t, New(cfg), chunks)
	second := collect(t, New(cfg), chunks)
	if !bytes.Equal(first, second) {
		t.Fatal("same seed, same writes, different corruption")
	}
	if bytes.Equal(first, clean.Bytes()) {
		t.Fatal("corruption probability 0.3 over 50 writes corrupted nothing")
	}
}

func TestCorruptionFlipsExactlyOneByteAndCounts(t *testing.T) {
	nw := New(Config{Seed: 1, CorruptProb: 1})
	got := collect(t, nw, [][]byte{bytes.Repeat([]byte{0xAA}, 32)})
	if len(got) != 32 {
		t.Fatalf("received %d bytes, want 32", len(got))
	}
	diff := 0
	for _, b := range got {
		if b != 0xAA {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("%d bytes differ, want exactly 1 per write op", diff)
	}
	if c := nw.Counts().Corrupted; c != 1 {
		t.Fatalf("counted %d corruptions, want 1", c)
	}
}

func TestFaultFreeBytesGrace(t *testing.T) {
	nw := New(Config{Seed: 1, CorruptProb: 1, FaultFreeBytes: 64})
	chunks := [][]byte{
		bytes.Repeat([]byte{1}, 32), // bytes 0–31: in grace
		bytes.Repeat([]byte{2}, 32), // bytes 32–63: in grace
		bytes.Repeat([]byte{3}, 32), // bytes 64–95: fair game
	}
	got := collect(t, nw, chunks)
	if !bytes.Equal(got[:64], append(bytes.Repeat([]byte{1}, 32), bytes.Repeat([]byte{2}, 32)...)) {
		t.Fatal("grace bytes were corrupted")
	}
	if bytes.Equal(got[64:], bytes.Repeat([]byte{3}, 32)) {
		t.Fatal("post-grace bytes escaped corruption at probability 1")
	}
}

func TestInjectedResetLooksReal(t *testing.T) {
	nw := New(Config{Seed: 1, ResetProb: 1})
	client, server := net.Pipe()
	defer server.Close()
	wrapped := nw.Wrap(client)
	_, err := wrapped.Write([]byte("hello"))
	if !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("write after reset roll: %v", err)
	}
	if !errors.Is(err, syscall.ECONNRESET) {
		t.Fatal("injected reset does not classify as a connection reset")
	}
	if c := nw.Counts().Resets; c != 1 {
		t.Fatalf("counted %d resets, want 1", c)
	}
	// The reset is sticky and the underlying conn is closed.
	if _, err := wrapped.Write([]byte("again")); err == nil {
		t.Fatal("write succeeded on a reset connection")
	}
}

func TestPartitionWindow(t *testing.T) {
	nw := New(Config{Seed: 1})
	client, server := net.Pipe()
	defer server.Close()
	go io.Copy(io.Discard, server)
	wrapped := nw.Wrap(client)

	if _, err := wrapped.Write([]byte("before")); err != nil {
		t.Fatalf("write before partition: %v", err)
	}
	nw.PartitionFor(100 * time.Millisecond)
	if _, err := wrapped.Write([]byte("during")); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("write during partition: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := wrapped.Write([]byte("after")); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("partition never healed")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if c := nw.Counts().Partitions; c != 1 {
		t.Fatalf("counted %d partitions, want 1", c)
	}
}

// TestPartitionErrorIsRetryableTimeout pins the satellite contract:
// ErrPartitioned satisfies net.Error with Timeout() == true, so fault
// classifiers bucket a partition with deadline expiries (retryable),
// and errors.As finds it through wrapping.
func TestPartitionErrorIsRetryableTimeout(t *testing.T) {
	var nerr net.Error
	if !errors.As(ErrPartitioned, &nerr) {
		t.Fatal("ErrPartitioned is not a net.Error")
	}
	if !nerr.Timeout() {
		t.Fatal("ErrPartitioned.Timeout() = false; partitions must look like timeouts")
	}
	wrapped := &net.OpError{Op: "write", Net: "tcp", Err: ErrPartitioned}
	if !errors.As(error(wrapped), &nerr) || !nerr.Timeout() {
		t.Fatal("wrapped ErrPartitioned lost its timeout classification")
	}
}

// TestDialerWrapsDialedConns: the client-side mirror of Listener — every
// connection the wrapped dial function opens is fault-injected.
func TestDialerWrapsDialedConns(t *testing.T) {
	nw := New(Config{Seed: 1, CorruptProb: 1})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	msg := bytes.Repeat([]byte{0x55}, 64)
	got := make(chan []byte, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		buf := make([]byte, len(msg))
		if _, err := io.ReadFull(conn, buf); err != nil {
			return
		}
		got <- buf
	}()

	dial := nw.Dialer(func(ctx context.Context) (net.Conn, error) {
		var d net.Dialer
		return d.DialContext(ctx, "tcp", ln.Addr().String())
	})
	conn, err := dial(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write(msg); err != nil {
		t.Fatal(err)
	}
	select {
	case received := <-got:
		if bytes.Equal(received, msg) {
			t.Fatal("dialed connection not fault-injected")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server never received the write")
	}
	if nw.Counts().Corrupted == 0 {
		t.Fatal("write-path corruption not counted")
	}
}

// TestOpFaultTargetsExactOperation: a targeted OpFault hits precisely
// the named write of the named connection — drop swallows it whole,
// corrupt flips one byte of it — and leaves every other operation
// untouched even with no probabilistic faults configured.
func TestOpFaultTargetsExactOperation(t *testing.T) {
	nw := New(Config{Seed: 1, Ops: []OpFault{
		{Conn: 1, Op: 2, Write: true, Action: ActDrop},
		{Conn: 1, Op: 3, Write: true, Action: ActCorrupt},
	}})
	chunks := [][]byte{
		bytes.Repeat([]byte{1}, 8), // op 1: clean
		bytes.Repeat([]byte{2}, 8), // op 2: dropped
		bytes.Repeat([]byte{3}, 8), // op 3: one byte flipped
		bytes.Repeat([]byte{4}, 8), // op 4: clean
	}
	got := collect(t, nw, chunks)
	if len(got) != 24 {
		t.Fatalf("received %d bytes, want 24 (op 2's 8 bytes dropped)", len(got))
	}
	if !bytes.Equal(got[:8], chunks[0]) || !bytes.Equal(got[16:], chunks[3]) {
		t.Fatal("untargeted writes were altered")
	}
	diff := 0
	for _, b := range got[8:16] {
		if b != 3 {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("targeted corrupt flipped %d bytes of op 3, want exactly 1", diff)
	}
	c := nw.Counts()
	if c.Dropped != 1 || c.Corrupted != 1 || c.Resets != 0 {
		t.Fatalf("counts %+v, want 1 drop, 1 corruption, 0 resets", c)
	}
}

// TestOpFaultReset: a targeted reset kills the connection at exactly
// that call, and a read-side drop (bytes cannot be unsent) degrades to
// a reset.
func TestOpFaultReset(t *testing.T) {
	nw := New(Config{Seed: 1, Ops: []OpFault{{Conn: 1, Op: 2, Write: true, Action: ActReset}}})
	client, server := net.Pipe()
	defer server.Close()
	go io.Copy(io.Discard, server)
	wrapped := nw.Wrap(client)
	if _, err := wrapped.Write([]byte("one")); err != nil {
		t.Fatalf("write 1: %v", err)
	}
	if _, err := wrapped.Write([]byte("two")); !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("write 2: %v, want injected reset", err)
	}

	nw = New(Config{Seed: 1, Ops: []OpFault{{Conn: 1, Op: 1, Write: false, Action: ActDrop}}})
	client2, server2 := net.Pipe()
	defer server2.Close()
	go server2.Write([]byte("payload"))
	wrapped2 := nw.Wrap(client2)
	buf := make([]byte, 16)
	if _, err := wrapped2.Read(buf); !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("read-side drop: %v, want degraded reset", err)
	}
}

// TestOpFaultsDoNotShiftProbabilisticSequence: targeted faults never
// consume from the RNG streams, so adding an OpFault to a seeded chaos
// config leaves the probabilistic fault sequence byte-identical — the
// determinism contract seed-replay tests depend on.
func TestOpFaultsDoNotShiftProbabilisticSequence(t *testing.T) {
	chunks := make([][]byte, 40)
	for i := range chunks {
		chunks[i] = bytes.Repeat([]byte{byte(i)}, 16)
	}
	base := Config{Seed: 9, CorruptProb: 0.3}
	withOp := base
	withOp.Ops = []OpFault{{Conn: 1, Op: 5, Write: true, Action: ActDrop}}

	plain := collect(t, New(base), chunks)
	targeted := collect(t, New(withOp), chunks)
	// Remove op 5's bytes (dropped) from the plain run for comparison;
	// ops are 1-based, chunk i is op i+1, so op 5 is chunks[4]:
	// bytes [64, 80).
	expected := append(append([]byte{}, plain[:64]...), plain[80:]...)
	if !bytes.Equal(targeted, expected) {
		t.Fatal("targeted drop shifted the probabilistic corruption sequence")
	}
}

func TestListenerWrapsAcceptedConns(t *testing.T) {
	nw := New(Config{Seed: 1, CorruptProb: 1})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	fl := nw.Listener(ln)

	msg := bytes.Repeat([]byte{0x55}, 64)
	go func() {
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			return
		}
		defer conn.Close()
		conn.Write(msg)
	}()
	conn, err := fl.Accept()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(conn, got); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, msg) {
		t.Fatal("accepted connection not fault-injected")
	}
	if nw.Counts().Corrupted == 0 {
		t.Fatal("read-path corruption not counted")
	}
}

// TestBurstDeterministicAndClustered pins the Gilbert–Elliott
// byte-stream model: the same seed replays the same burst sequence,
// and corruptions arrive clustered in bad-state runs rather than as
// isolated per-op flips.
func TestBurstDeterministicAndClustered(t *testing.T) {
	const chunks, chunkLen = 300, 16
	in := make([][]byte, chunks)
	for i := range in {
		in[i] = bytes.Repeat([]byte{byte(i)}, chunkLen)
	}
	cfg := Config{
		Seed:  5,
		Burst: BurstConfig{EnterProb: 0.05, ExitProb: 0.25, CorruptProb: 0.9},
	}
	nw := New(cfg)
	first := collect(t, nw, in)
	second := collect(t, New(cfg), in)
	if !bytes.Equal(first, second) {
		t.Fatal("same seed, same writes, different burst faults")
	}

	counts := nw.Counts()
	if counts.BurstEnters == 0 || counts.Corrupted == 0 {
		t.Fatalf("burst model enabled but idle: %+v", counts)
	}
	// Bursts are multi-op: more corruptions than bursts, and at least
	// one adjacent pair of corrupted ops.
	if counts.Corrupted <= counts.BurstEnters {
		t.Fatalf("%d corruptions over %d bursts — bursts should span multiple ops",
			counts.Corrupted, counts.BurstEnters)
	}
	corrupted := make([]bool, chunks)
	for i := 0; i < chunks; i++ {
		for _, b := range first[i*chunkLen : (i+1)*chunkLen] {
			if b != byte(i) {
				corrupted[i] = true
				break
			}
		}
	}
	adjacent := false
	for i := 1; i < chunks && !adjacent; i++ {
		adjacent = corrupted[i-1] && corrupted[i]
	}
	if !adjacent {
		t.Fatal("no two adjacent operations corrupted — faults did not cluster")
	}
}

// TestBurstDisabledConsumesNoDraws: a Config without Burst produces
// the identical fault sequence whether or not the field exists — the
// zero-value model must not touch the RNG. (Pinned by comparing a
// plain config against itself plus an explicitly zero Burst.)
func TestBurstDisabledConsumesNoDraws(t *testing.T) {
	in := make([][]byte, 100)
	for i := range in {
		in[i] = bytes.Repeat([]byte{byte(i)}, 8)
	}
	plain := Config{Seed: 11, CorruptProb: 0.3}
	zeroed := plain
	zeroed.Burst = BurstConfig{}
	if !bytes.Equal(collect(t, New(plain), in), collect(t, New(zeroed), in)) {
		t.Fatal("zero-value Burst shifted the seeded fault sequence")
	}
}
