// Journal tailing: the replication feed. A follower calls Follow to
// get a consistent snapshot of the live state plus a channel carrying
// every subsequently committed record frame. Frames are published under
// the journal lock at commit time — after the write (and, for fsynced
// kinds, the fsync) succeeds — so a frame on the feed is always a whole,
// CRC-valid record in commit order. Segment rotation republishes no
// facts (a rotation snapshot is a compaction of records the feed
// already carried), which is why a rotation boundary can never tear a
// frame across the feed: the feed is a logical record stream, not a
// byte tail of the segment files.
package journal

import (
	"errors"
	"fmt"
)

// Exported record-kind bytes, matching Record.Kind, for feed consumers
// that account records by kind.
const (
	KindAdmit     = kindAdmit
	KindWatermark = kindWatermark
	KindComplete  = kindComplete
	KindExpire    = kindExpire
	KindEpoch     = kindEpoch
)

// DefaultFollowBuffer is the per-subscriber frame buffer when Follow is
// called with a non-positive buffer size.
const DefaultFollowBuffer = 4096

// Offsets is the feed's publish cursor: the active segment sequence
// plus the cumulative committed records and bytes published since Open.
// A follower subtracts its own applied counts from the primary's cursor
// to report replication lag.
type Offsets struct {
	SegmentSeq uint64 `json:"segment_seq"`
	Records    uint64 `json:"records"`
	Bytes      uint64 `json:"bytes"`
}

// Follow subscribes to the record feed. It returns a snapshot — one
// segment image (magic plus framed records) encoding the live state at
// subscription time, scannable with ScanSegment — the cursor that
// snapshot corresponds to, and a channel of every record frame
// committed after it. A subscriber that falls more than buffer frames
// behind is dropped: its channel closes, and it re-attaches with a
// fresh Follow (a resync), so a slow follower can never block the
// commit path. cancel unsubscribes (idempotent).
func (j *Journal) Follow(buffer int) (snapshot []byte, at Offsets, frames <-chan []byte, cancel func(), err error) {
	if buffer <= 0 {
		buffer = DefaultFollowBuffer
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil, Offsets{}, nil, nil, errors.New("journal: closed")
	}
	snapshot = j.snapshotLocked()
	at = Offsets{SegmentSeq: j.seq, Records: j.pubRecs, Bytes: j.pubBytes}
	ch := make(chan []byte, buffer)
	id := j.nextSub
	j.nextSub++
	j.subs[id] = ch
	cancel = func() {
		j.mu.Lock()
		defer j.mu.Unlock()
		if c, ok := j.subs[id]; ok {
			delete(j.subs, id)
			close(c)
		}
	}
	return snapshot, at, ch, cancel, nil
}

// FollowOffsets reports the current publish cursor — the payload of a
// replication heartbeat.
func (j *Journal) FollowOffsets() Offsets {
	j.mu.Lock()
	defer j.mu.Unlock()
	return Offsets{SegmentSeq: j.seq, Records: j.pubRecs, Bytes: j.pubBytes}
}

// publishLocked hands one committed frame to every live subscriber.
// Subscribers with a full channel are dropped (channel closed) rather
// than waited on. Caller holds j.mu.
func (j *Journal) publishLocked(frame []byte) {
	j.pubRecs++
	j.pubBytes += uint64(len(frame))
	if len(j.subs) == 0 {
		return
	}
	cp := append([]byte(nil), frame...)
	for id, ch := range j.subs {
		select {
		case ch <- cp:
		default:
			delete(j.subs, id)
			close(ch)
		}
	}
}

// closeSubsLocked ends every subscription; Close and Abandon call it so
// followers observe the journal's death promptly. Caller holds j.mu.
func (j *Journal) closeSubsLocked() {
	for id, ch := range j.subs {
		delete(j.subs, id)
		close(ch)
	}
}

// AppendRecord commits one decoded record — the follower side of the
// feed. Records replicated from a primary land in the standby journal
// through the same commit paths (and durability rules) as locally
// originated facts: admits, completions, and expiries fsync; watermarks
// coalesce for the flusher.
func (j *Journal) AppendRecord(r Record) error {
	switch r.Kind {
	case kindAdmit:
		_, err := j.Admitted(r.Stream)
		return err
	case kindWatermark:
		j.Watermark(r.Token, r.Watermark, r.HashState)
		return nil
	case kindComplete:
		_, err := j.Completed(r.Tomb)
		return err
	case kindExpire:
		_, err := j.Expired(r.Token, r.Nonce, r.Reason)
		return err
	case kindEpoch:
		_, err := j.AppendEpoch(r.Epoch)
		return err
	}
	return fmt.Errorf("journal: append of unknown record kind %#02x", r.Kind)
}

// AppendRecords commits a run of decoded records as one group-commit
// batch: watermarks coalesce for the flusher exactly as in AppendRecord,
// and every durable kind (admit, complete, expire, epoch) rides a
// single batch fsync. A follower that drained several replication
// frames off its socket applies them all for the price of one sync —
// its cumulative ack then acknowledges the whole run. An error fails
// the entire durable run (the batch never splits).
func (j *Journal) AppendRecords(recs []Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	var w *commitWaiter
	for _, r := range recs {
		switch r.Kind {
		case kindWatermark:
			if j.closing || j.closed || j.broken {
				continue
			}
			e, ok := j.dirty[r.Token]
			if !ok {
				if n := len(j.wmFree); n > 0 {
					e.state = j.wmFree[n-1][:0]
					j.wmFree = j.wmFree[:n-1]
				}
			}
			e.mark = r.Watermark
			e.state = append(e.state[:0], r.HashState...)
			j.dirty[r.Token] = e
			j.stats.WatermarksCoalesced++
			continue
		case kindEpoch:
			if r.Epoch <= j.state.Epoch {
				continue
			}
		case kindComplete:
			j.dropDirtyLocked(r.Tomb.Token)
		case kindExpire:
			if r.Reason != ExpireTombstone {
				j.dropDirtyLocked(r.Token)
			}
		case kindAdmit:
		default:
			return fmt.Errorf("journal: append of unknown record kind %#02x", r.Kind)
		}
		if err := j.appendableLocked(); err != nil {
			return err
		}
		if w == nil {
			w = j.getWaiterLocked()
		}
		switch r.Kind {
		case kindAdmit:
			w.addAdmit(r.Stream)
		case kindComplete:
			w.addComplete(r.Tomb)
		case kindExpire:
			w.addExpire(r.Token, r.Nonce, r.Reason)
		case kindEpoch:
			w.addEpoch(r.Epoch)
		}
	}
	if w == nil {
		return nil
	}
	_, err := j.commitLocked(w)
	j.putWaiterLocked(w)
	return err
}

// ResetTo replaces the journal's live state wholesale with the state
// the given records fold to — a Follow snapshot the follower just
// scanned — and compacts it into a fresh segment. This is the resync
// entry point: a follower that was dropped from the feed (or connected
// to a new primary) starts over from the primary's snapshot instead of
// reconciling diverged histories.
func (j *Journal) ResetTo(recs []Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	// Rotation swaps the active file and the reset replaces the state a
	// batch leader would fold its records into; wait out any in-flight
	// batch first.
	for j.committing {
		j.commitCond.Wait()
	}
	if err := j.appendableLocked(); err != nil {
		return err
	}
	j.dirty = map[uint64]wmEntry{}
	j.state = newState()
	for _, r := range recs {
		j.state.apply(r)
	}
	return j.rotateLocked()
}
