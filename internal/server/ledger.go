// Lock-sharded session ledgers. The nonce table (live hello nonce →
// stream) and the completion-tombstone LRU used to live under the
// server mutex, so every duplicate-hello probe and late-resume lookup
// in a saturated soak serialized on the same lock that guards
// admission. Both ledgers are keyed by values that are uniform by
// construction (crypto-random nonces and resume tokens), so a
// fixed-width shard array with per-shard mutexes spreads that traffic
// ~evenly with no resizing or rebalancing.
//
// The sharding changes locking, not semantics. The admission
// controller's AdmitNonce — still under s.mu — remains the
// authoritative double-reserve guard: a racy miss in the nonce ledger
// only costs a sender one RejectedBusy round trip. And gap-freedom for
// late resumes holds because finish entombs a completed stream before
// s.mu is released: any resume that finds the token gone from
// s.resumable serialized after that critical section and therefore
// finds the tombstone.
package server

import (
	"sync"
	"time"

	"mpegsmooth/internal/lru"
)

// ledgerShards is the shard count for both ledgers; a power of two so
// the fibonacci hash reduces to a shift.
const ledgerShards = 32

// ledgerShard maps a uniform 64-bit key to a shard index by fibonacci
// hashing: multiply by 2⁶⁴/φ and keep the top bits. Even adversarially
// clustered keys spread, and for the crypto-random keys these ledgers
// hold it is effectively a free permutation.
func ledgerShard(key uint64) int {
	return int((key * 0x9E3779B97F4A7C15) >> (64 - 5))
}

// nonceShard is one stripe of the nonce ledger, padded out so adjacent
// shards' mutexes do not share a cache line under contention.
type nonceShard struct {
	mu sync.Mutex
	m  map[uint64]*stream
	_  [40]byte
}

// nonceLedger routes duplicate hellos (a sender redialing because our
// admission verdict was lost) back to their live stream.
type nonceLedger struct {
	shards [ledgerShards]nonceShard
}

func newNonceLedger() *nonceLedger {
	l := &nonceLedger{}
	for i := range l.shards {
		l.shards[i].m = map[uint64]*stream{}
	}
	return l
}

func (l *nonceLedger) get(nonce uint64) *stream {
	sh := &l.shards[ledgerShard(nonce)]
	sh.mu.Lock()
	st := sh.m[nonce]
	sh.mu.Unlock()
	return st
}

func (l *nonceLedger) put(nonce uint64, st *stream) {
	sh := &l.shards[ledgerShard(nonce)]
	sh.mu.Lock()
	sh.m[nonce] = st
	sh.mu.Unlock()
}

func (l *nonceLedger) del(nonce uint64) {
	sh := &l.shards[ledgerShard(nonce)]
	sh.mu.Lock()
	delete(sh.m, nonce)
	sh.mu.Unlock()
}

// tombShard is one stripe of the tombstone ledger: a last-touch LRU
// with its own adaptive sizer, exactly the pre-sharding design at 1/32
// scale. Uniform tokens land ~uniformly, so per-shard rate × TTL is the
// global rate × TTL divided by the shard count and the aggregate cap
// tracks the same completion flood the single ledger did.
type tombShard struct {
	mu    sync.Mutex
	m     *lru.Map[uint64, tombstone]
	sizer lru.Sizer
}

// tombLedger remembers recently completed streams by resume token so a
// sender whose completion ack was lost gets a precise AlreadyComplete
// verdict (with the final hash) instead of an unknown-token rejection.
type tombLedger struct {
	shards [ledgerShards]tombShard
}

// tombShardKeep is each shard's capacity floor — the global
// tombstoneKeep split across shards.
const tombShardKeep = tombstoneKeep / ledgerShards

func newTombLedger() *tombLedger {
	l := &tombLedger{}
	for i := range l.shards {
		l.shards[i].m = lru.New[uint64, tombstone](tombShardKeep)
		l.shards[i].sizer = lru.Sizer{Min: tombShardKeep}
	}
	return l
}

// put entombs one completed stream. The shard's adaptive cap tracks its
// completion rate × ttl, expired entries are swept from the cold end,
// and a tombstone a late sender keeps probing stays warm — a completion
// flood can only evict entries the TTL would have expired anyway.
func (l *tombLedger) put(token uint64, t tombstone, ttl time.Duration) {
	now := time.Now()
	sh := &l.shards[ledgerShard(token)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.sizer.Note(now)
	sh.m.SetCap(sh.sizer.Cap(ttl, now))
	var dead []uint64
	sh.m.Range(func(tok uint64, old tombstone) bool {
		if now.Before(old.expires) {
			return false // touch recency ≈ expiry order; the rest are live
		}
		dead = append(dead, tok)
		return true
	})
	for _, tok := range dead {
		sh.m.Delete(tok)
	}
	sh.m.Put(token, t)
}

// lookup finds a live tombstone; the lookup touches the entry, keeping
// probed tombstones ahead of eviction.
func (l *tombLedger) lookup(token uint64) (tombstone, bool) {
	sh := &l.shards[ledgerShard(token)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	t, ok := sh.m.Get(token)
	if !ok {
		return tombstone{}, false
	}
	if time.Now().After(t.expires) {
		sh.m.Delete(token)
		return tombstone{}, false
	}
	return t, true
}

// len sums live entries across shards (ops snapshot).
func (l *tombLedger) len() int {
	n := 0
	for i := range l.shards {
		sh := &l.shards[i]
		sh.mu.Lock()
		n += sh.m.Len()
		sh.mu.Unlock()
	}
	return n
}
