package transport

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Datagram packet layer: the wire format the ARQ connection (dgconn.go)
// speaks over a lossy packet channel. Each UDP datagram carries exactly
// one packet; the stream frames of wire.go ride inside the reliable
// byte stream the ARQ layer reconstructs, so the two codecs never mix
// on the wire. Packet kinds deliberately avoid the stream frame kind
// bytes ('R','P','E','H','V','M','D') so a cross-fed byte is always an
// immediate decode error rather than a plausible packet.
//
// Wire formats (big-endian, CRC32-IEEE over every preceding byte):
//
//	DATA  'd' | conn(4) | seq(4) | len(2) | payload | crc32(4)
//	FIN   'f' | conn(4) | seq(4) | len(2)=0        | crc32(4)
//	ACK   'a' | conn(4) | cum(4) | bitmap(8)       | crc32(4)
//
// conn is the flow incarnation ID drawn fresh per dial: packets from a
// previous incarnation of the same 5-tuple fail the ID check and drop
// as stale duplicates instead of corrupting the live flow. seq numbers
// packets (not bytes) from 0 per direction; a FIN occupies a sequence
// slot so end-of-stream rides the same selective-repeat reliability as
// data. An ACK carries cum = the next sequence the receiver expects
// (everything below is delivered) plus a 64-bit selective-ack bitmap:
// bit i set means seq cum+1+i is held in the reassembly buffer.
const (
	dgKindData = 'd'
	dgKindFin  = 'f'
	dgKindAck  = 'a'
)

const (
	// dgDataHeader is kind+conn+seq+len; dgAckSize the full fixed-size
	// ACK packet; dgTrailer the CRC.
	dgDataHeader = 1 + 4 + 4 + 2
	dgAckSize    = 1 + 4 + 4 + 8 + 4
	dgTrailer    = 4

	// DatagramMTU is the default per-packet payload budget, sized so a
	// full DATA packet stays under common 1280-byte path MTUs with the
	// 15-byte header+trailer overhead.
	DatagramMTU = 1152

	// dgMaxPayload bounds what the decoder will accept, independent of
	// the sender's MTU setting — a corrupted length field must never
	// drive a large allocation.
	dgMaxPayload = 9216

	// dgSendWindow is the selective-repeat send window in packets. It
	// matches the 64-bit ACK bitmap exactly so every in-flight packet is
	// individually ackable, and fits inside the receiver's reassembly
	// window with room for one displaced window of duplicates.
	dgSendWindow = 64

	// dgReassemblyWindow bounds receiver buffering: a packet at or past
	// rcvNext+window is a reorder overflow and tears the flow down. A
	// conforming sender never exceeds rcvNext+dgSendWindow, so overflow
	// only fires on channel displacement beyond a full extra window or
	// cross-incarnation traffic.
	dgReassemblyWindow = 128

	// dgGapRetransmit is the gap-evidence threshold for fast retransmit:
	// once a packet has been reported missing (unacked below a
	// selectively-acked higher sequence) this many times, it is resent
	// without waiting for its retransmission timeout.
	dgGapRetransmit = 2
)

// dgPacket is one decoded datagram.
type dgPacket struct {
	Kind byte
	Conn uint32 // flow incarnation ID
	// DATA/FIN fields.
	Seq     uint32
	Payload []byte // aliases the decode input; copy before retaining
	// ACK fields.
	Cum    uint32 // next sequence the receiver expects
	Bitmap uint64 // bit i: seq Cum+1+i held in reassembly
}

// appendDataPacket encodes a DATA (or, with empty payload and the FIN
// kind, a FIN) packet onto dst.
func appendDataPacket(dst []byte, kind byte, conn, seq uint32, payload []byte) []byte {
	start := len(dst)
	dst = append(dst, kind)
	dst = binary.BigEndian.AppendUint32(dst, conn)
	dst = binary.BigEndian.AppendUint32(dst, seq)
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(payload)))
	dst = append(dst, payload...)
	return binary.BigEndian.AppendUint32(dst, crc32.ChecksumIEEE(dst[start:]))
}

// appendAckPacket encodes an ACK packet onto dst.
func appendAckPacket(dst []byte, conn, cum uint32, bitmap uint64) []byte {
	start := len(dst)
	dst = append(dst, dgKindAck)
	dst = binary.BigEndian.AppendUint32(dst, conn)
	dst = binary.BigEndian.AppendUint32(dst, cum)
	dst = binary.BigEndian.AppendUint64(dst, bitmap)
	return binary.BigEndian.AppendUint32(dst, crc32.ChecksumIEEE(dst[start:]))
}

// decodeDatagram parses and verifies one received datagram. Every
// failure wraps ErrCorrupt; a valid datagram must be exactly one whole
// packet (UDP preserves message boundaries, so trailing bytes mean
// corruption, not coalescing). The returned packet's Payload aliases
// buf.
func decodeDatagram(buf []byte) (dgPacket, error) {
	var p dgPacket
	if len(buf) == 0 {
		return p, fmt.Errorf("empty datagram: %w", ErrCorrupt)
	}
	p.Kind = buf[0]
	switch p.Kind {
	case dgKindData, dgKindFin:
		if len(buf) < dgDataHeader+dgTrailer {
			return p, fmt.Errorf("datagram truncated (%d bytes): %w", len(buf), ErrCorrupt)
		}
		n := int(binary.BigEndian.Uint16(buf[9:11]))
		if n > dgMaxPayload {
			return p, fmt.Errorf("datagram payload length %d exceeds cap: %w", n, ErrCorrupt)
		}
		if len(buf) != dgDataHeader+n+dgTrailer {
			return p, fmt.Errorf("datagram length %d does not match header (%d payload): %w",
				len(buf), n, ErrCorrupt)
		}
		if p.Kind == dgKindFin && n != 0 {
			return p, fmt.Errorf("fin with %d payload bytes: %w", n, ErrCorrupt)
		}
		body := buf[:dgDataHeader+n]
		if got, want := crc32.ChecksumIEEE(body), binary.BigEndian.Uint32(buf[len(buf)-4:]); got != want {
			return p, fmt.Errorf("datagram crc mismatch: %w", ErrCorrupt)
		}
		p.Conn = binary.BigEndian.Uint32(buf[1:5])
		p.Seq = binary.BigEndian.Uint32(buf[5:9])
		p.Payload = buf[dgDataHeader : dgDataHeader+n]
		return p, nil
	case dgKindAck:
		if len(buf) != dgAckSize {
			return p, fmt.Errorf("ack datagram length %d: %w", len(buf), ErrCorrupt)
		}
		body := buf[:dgAckSize-dgTrailer]
		if got, want := crc32.ChecksumIEEE(body), binary.BigEndian.Uint32(buf[len(buf)-4:]); got != want {
			return p, fmt.Errorf("ack crc mismatch: %w", ErrCorrupt)
		}
		p.Conn = binary.BigEndian.Uint32(buf[1:5])
		p.Cum = binary.BigEndian.Uint32(buf[5:9])
		p.Bitmap = binary.BigEndian.Uint64(buf[9:17])
		return p, nil
	}
	return p, fmt.Errorf("unknown datagram kind %#x: %w", p.Kind, ErrCorrupt)
}
