package transport

import (
	"context"
	"fmt"
	"time"

	"mpegsmooth/internal/core"
	"mpegsmooth/internal/mpeg"
)

// Clock abstracts time for the paced sender so tests can run with
// compressed timescales.
type Clock interface {
	Now() time.Time
	Sleep(ctx context.Context, d time.Duration) error
}

// RealClock is the wall clock.
type RealClock struct{}

// Now implements Clock.
func (RealClock) Now() time.Time { return time.Now() }

// Sleep implements Clock, returning early if ctx is cancelled.
func (RealClock) Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Sender transmits a smoothing schedule over a connection, pacing each
// picture's bytes at its scheduled rate.
type Sender struct {
	// Chunk is the pacing granularity in bytes (default 1024): the sender
	// writes at most Chunk bytes, then sleeps until the pacing deadline
	// for the next chunk.
	Chunk int
	// Clock defaults to RealClock.
	Clock Clock
	// TimeScale compresses the schedule's timeline: wall-clock durations
	// are schedule durations divided by TimeScale (default 1; tests use
	// large factors to replay multi-second schedules in milliseconds).
	TimeScale float64
	// WriteTimeout arms a write deadline per message and payload chunk
	// (the mirror of Receiver.ReadTimeout) so a dead or stalled receiver
	// cannot wedge the sender goroutine. Zero means no deadline; it
	// takes effect only when the connection supports write deadlines.
	WriteTimeout time.Duration
}

// Send replays the schedule over w: for each picture it waits until the
// scheduled start time t_i (relative to the session origin), emits the
// rate notification, and streams the picture's payload paced at r_i.
// payloads[i] must hold ceil(S_i/8) bytes of picture i's data.
//
// Send is a wrapper over SendDecisions: the schedule's per-picture
// arrays are the stored form of the Session decision stream the sender
// actually consumes.
func (s *Sender) Send(ctx context.Context, w *FrameWriter, sched *core.Schedule, payloads [][]byte) error {
	decisions := make([]core.Decision, len(sched.Rates))
	for i := range decisions {
		decisions[i] = core.Decision{Picture: i, Rate: sched.Rates[i], Start: sched.Start[i]}
	}
	return s.SendDecisions(ctx, w, decisions, sched.Trace.TypeOf, payloads)
}

// SendDecisions paces pictures over w directly from a Session's decision
// stream: for each decision it waits until the scheduled start time
// (relative to the session origin), emits a rate notification when the
// rate changed, and streams the picture's payload paced at the decided
// rate. typeOf supplies the picture type for wire headers (for a pure
// GOP-pattern stream, gop.TypeOf); payloads[i] holds picture
// decisions[i].Picture's data, ceil(S_i/8) bytes.
func (s *Sender) SendDecisions(ctx context.Context, w *FrameWriter, decisions []core.Decision, typeOf func(int) mpeg.PictureType, payloads [][]byte) error {
	if len(payloads) != len(decisions) {
		return fmt.Errorf("transport: %d payloads for %d pictures", len(payloads), len(decisions))
	}
	return s.sendFrom(ctx, w, decisions, typeOf, payloads, 0)
}

// sendFrom paces decisions[start:] over w. For start > 0 (a resumed
// stream) the pacing origin is shifted so the replay point transmits
// immediately; the remaining schedule then keeps its original
// inter-picture spacing, which bounds the delay overshoot by the outage
// duration.
func (s *Sender) sendFrom(ctx context.Context, w *FrameWriter, decisions []core.Decision, typeOf func(int) mpeg.PictureType, payloads [][]byte, start int) error {
	chunk := s.Chunk
	if chunk <= 0 {
		chunk = 1024
	}
	clock := s.Clock
	if clock == nil {
		clock = RealClock{}
	}
	scale := s.TimeScale
	if scale <= 0 {
		scale = 1
	}
	if s.WriteTimeout > 0 && w.WriteTimeout == 0 {
		w.WriteTimeout = s.WriteTimeout
	}
	origin := clock.Now()
	if start > 0 && start < len(decisions) {
		origin = origin.Add(-time.Duration(decisions[start].Start / scale * float64(time.Second)))
	}
	deadline := func(schedTime float64) time.Time {
		return origin.Add(time.Duration(schedTime / scale * float64(time.Second)))
	}

	lastRate := 0.0
	for i := start; i < len(decisions); i++ {
		d := decisions[i]
		if err := ctx.Err(); err != nil {
			return err
		}
		// Wait for the scheduled start of the picture (continuous
		// service makes this a no-op after the first picture, modulo
		// pacing error).
		if err := clock.Sleep(ctx, deadline(d.Start).Sub(clock.Now())); err != nil {
			return err
		}
		if d.Rate != lastRate {
			if err := w.WriteRate(RateNotification{Index: d.Picture, Rate: d.Rate}); err != nil {
				return fmt.Errorf("transport: rate notification %d: %w", d.Picture, err)
			}
			lastRate = d.Rate
		}
		payload := payloads[i]
		if err := w.WritePictureHeader(d.Picture, typeOf(d.Picture), payload); err != nil {
			return fmt.Errorf("transport: picture header %d: %w", d.Picture, err)
		}
		// Pace the payload: after sending b bytes, the elapsed schedule
		// time must be at least 8b/r_i.
		sent := 0
		for sent < len(payload) {
			end := sent + chunk
			if end > len(payload) {
				end = len(payload)
			}
			if err := w.WriteChunk(payload[sent:end]); err != nil {
				return fmt.Errorf("transport: picture %d payload: %w", d.Picture, err)
			}
			sent = end
			if err := clock.Sleep(ctx, deadline(d.Start+float64(sent)*8/d.Rate).Sub(clock.Now())); err != nil {
				return err
			}
		}
	}
	if err := w.WriteEnd(); err != nil {
		return fmt.Errorf("transport: end marker: %w", err)
	}
	return nil
}
