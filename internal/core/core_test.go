package core

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"mpegsmooth/internal/mpeg"
	"mpegsmooth/internal/trace"
)

// flatTrace builds a trace with constant picture size for hand-checkable
// schedules.
func flatTrace(n int, size int64, tau float64) *trace.Trace {
	sizes := make([]int64, n)
	for i := range sizes {
		sizes[i] = size
	}
	return &trace.Trace{Name: "flat", Tau: tau, GOP: mpeg.GOP{M: 1, N: 1}, Sizes: sizes}
}

func paperTrace(t testing.TB, n int) *trace.Trace {
	t.Helper()
	tr, err := trace.Driving1(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestConfigValidate(t *testing.T) {
	tau := 1.0 / 30
	good := Config{K: 1, D: 0.2, H: 9}
	if err := good.Validate(tau); err != nil {
		t.Fatalf("good config: %v", err)
	}
	for name, bad := range map[string]Config{
		"negative K":       {K: -1, D: 0.2, H: 9},
		"zero H":           {K: 1, D: 0.2, H: 0},
		"zero D":           {K: 1, D: 0, H: 9},
		"D below (K+1)tau": {K: 5, D: 0.1, H: 9},
	} {
		if err := bad.Validate(tau); err == nil {
			t.Errorf("%s should fail", name)
		}
	}
	// K = 0 with small D is allowed (the violation experiment).
	if err := (Config{K: 0, D: 0.01, H: 1}).Validate(tau); err != nil {
		t.Errorf("K=0 small D should be allowed: %v", err)
	}
	// D exactly (K+1)τ is allowed.
	if err := (Config{K: 1, D: 2 * tau, H: 9}).Validate(tau); err != nil {
		t.Errorf("D = (K+1)τ should be allowed: %v", err)
	}
}

// TestHandComputedSchedule pins the 0-based translation of Eqs. (2)-(4)
// to a schedule computed by hand.
//
// Trace: 3 pictures of 1000 bits, τ = 0.1 s, K = 1, H = 1, D = 0.3 s.
// H = 1 means no lookahead: bounds come from h = 0 only.
//
// Picture 0: t_0 = max(0, (0+1)·0.1) = 0.1.
//
//	lower = 1000/(0.3 + 0 − 0.1) = 5000.
//	upper = 1000/((1+0+1)·0.1 − 0.1) = 10000.
//	First picture: rate = (5000+10000)/2 = 7500.
//	d_0 = 0.1 + 1000/7500 = 0.2333…, delay_0 = 0.2333….
//
// Picture 1: t_1 = max(0.2333…, 0.2) = 0.2333….
//
//	lower = 1000/(0.3 + 0.1 − 0.2333…) = 1000/0.1666… = 6000.
//	upper = 1000/(0.3 − 0.2333…) = 1000/0.0666… = 15000.
//	Basic: hold 7500 (inside bounds). d_1 = 0.2333… + 0.1333… = 0.3666….
//	delay_1 = 0.3666… − 0.1 = 0.2666….
//
// Picture 2: t_2 = max(0.3666…, 0.3) = 0.3666….
//
//	lower = 1000/(0.3+0.2−0.3666…) = 1000/0.1333… = 7500.
//	upper = 1000/(0.4−0.3666…) = 30000. Hold 7500.
//	d_2 = 0.3666… + 0.1333… = 0.5, delay_2 = 0.3.
func TestHandComputedSchedule(t *testing.T) {
	tr := flatTrace(3, 1000, 0.1)
	s, err := Smooth(tr, Config{K: 1, H: 1, D: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	approx := func(got, want float64, what string) {
		t.Helper()
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("%s = %.10f, want %.10f", what, got, want)
		}
	}
	approx(s.Start[0], 0.1, "t_0")
	approx(s.Rates[0], 7500, "r_0")
	approx(s.Depart[0], 0.1+1000.0/7500, "d_0")
	approx(s.Delays[0], 0.1+1000.0/7500, "delay_0")
	approx(s.Start[1], s.Depart[0], "t_1")
	approx(s.Rates[1], 7500, "r_1")
	approx(s.Delays[1], s.Depart[1]-0.1, "delay_1")
	approx(s.Rates[2], 7500, "r_2")
	approx(s.Depart[2], 0.5, "d_2")
	approx(s.Delays[2], 0.3, "delay_2")
	if v := s.CheckDelayBound(); v != -1 {
		t.Errorf("delay bound violated at %d", v)
	}
	if v := s.CheckContinuousService(); v != -1 {
		t.Errorf("continuous service violated at %d", v)
	}
	if v := s.CheckRatesWithinBounds(); v != -1 {
		t.Errorf("rate bounds violated at %d", v)
	}
	if v := s.CheckConservation(); v != -1 {
		t.Errorf("conservation violated at %d", v)
	}
}

func TestFlatTraceSettlesToConstantRate(t *testing.T) {
	// A constant-size trace should quickly settle to a constant rate with
	// very few rate changes.
	tr := flatTrace(100, 50_000, 1.0/30)
	s, err := Smooth(tr, Config{K: 1, H: 1, D: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	f, err := s.RateFunc()
	if err != nil {
		t.Fatal(err)
	}
	if ch := f.Changes(1e-9); ch > 3 {
		t.Errorf("flat trace produced %d rate changes", ch)
	}
}

func TestTheorem1OnPaperTrace(t *testing.T) {
	tr := paperTrace(t, 270)
	for _, cfg := range []Config{
		{K: 1, H: 9, D: 0.1},
		{K: 1, H: 9, D: 0.2},
		{K: 1, H: 9, D: 0.3},
		{K: 1, H: 1, D: 0.0667},
		{K: 9, H: 9, D: 0.1333 + 10.0/30},
		{K: 2, H: 18, D: 0.15},
		{K: 1, H: 9, D: 0.2, Variant: MovingAverage},
	} {
		s, err := Smooth(tr, cfg)
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		if v := s.CheckDelayBound(); v != -1 {
			t.Errorf("%+v: delay bound violated at picture %d (delay %.4f)", cfg, v, s.Delays[v])
		}
		if v := s.CheckContinuousService(); v != -1 {
			t.Errorf("%+v: continuous service violated at %d", cfg, v)
		}
		if v := s.CheckRatesWithinBounds(); v != -1 {
			t.Errorf("%+v: rate outside Theorem 1 bounds at %d (r=%.1f, [%.1f, %.1f])",
				cfg, v, s.Rates[v], s.LowerBound[v], s.UpperBound[v])
		}
		if v := s.CheckConservation(); v != -1 {
			t.Errorf("%+v: conservation violated at %d", cfg, v)
		}
		if v := s.CheckCausality(); v != -1 {
			t.Errorf("%+v: causality violated at %d", cfg, v)
		}
	}
}

func TestSmoothingActuallySmooths(t *testing.T) {
	// The smoothed max rate must be far below the unsmoothed peak
	// (sending each picture in one period).
	tr := paperTrace(t, 270)
	s, err := Smooth(tr, Config{K: 1, H: 9, D: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	f, err := s.RateFunc()
	if err != nil {
		t.Fatal(err)
	}
	unsmoothedPeak := tr.PeakPictureRate()
	if f.Max() > unsmoothedPeak/2 {
		t.Errorf("smoothed max %.2f Mbps not well below unsmoothed peak %.2f Mbps",
			f.Max()/1e6, unsmoothedPeak/1e6)
	}
	// And the mean must match the trace's mean rate (lossless: all bits
	// sent), over the schedule span.
	sent := f.Integral()
	if math.Abs(sent-float64(tr.TotalBits())) > 1e-3*float64(tr.TotalBits()) {
		t.Errorf("sent %.0f bits, trace has %d", sent, tr.TotalBits())
	}
}

func TestRelaxingDImprovesSmoothness(t *testing.T) {
	// Figure 6's qualitative content: larger D → fewer rate changes,
	// lower S.D., lower max rate.
	tr := paperTrace(t, 270)
	var prevStd, prevMax float64
	for i, D := range []float64{0.0667, 0.1333, 0.2667} {
		s, err := Smooth(tr, Config{K: 1, H: tr.GOP.N, D: D})
		if err != nil {
			t.Fatal(err)
		}
		f, err := s.RateFunc()
		if err != nil {
			t.Fatal(err)
		}
		std, max := f.Std(), f.Max()
		if i > 0 {
			if std > prevStd*1.05 {
				t.Errorf("D=%v: S.D. %.0f worse than tighter bound's %.0f", D, std, prevStd)
			}
			if max > prevMax*1.05 {
				t.Errorf("D=%v: max %.0f worse than tighter bound's %.0f", D, max, prevMax)
			}
		}
		prevStd, prevMax = std, max
	}
}

func TestK0CanViolateDelayBound(t *testing.T) {
	// Section 5.2: "For K = 0, however, we did observe some delay bound
	// violations when the slack in the delay bound was deliberately made
	// very small." Build a trace whose first picture is enormous relative
	// to the initial estimate, so the K=0 rate (based on the estimate) is
	// far too low.
	sizes := make([]int64, 18)
	for i := range sizes {
		sizes[i] = 30_000
	}
	sizes[0] = 2_000_000 // much larger than the 200k initial estimate
	tr := &trace.Trace{Name: "adversarial", Tau: 1.0 / 30, GOP: mpeg.GOP{M: 3, N: 9}, Sizes: sizes}
	s, err := Smooth(tr, Config{K: 0, H: 1, D: 0.034})
	if err != nil {
		t.Fatal(err)
	}
	if v := s.CheckDelayBound(); v == -1 {
		t.Error("expected a delay-bound violation with K=0 and tiny slack")
	}
	// The same trace with K = 1 must satisfy the bound (Theorem 1).
	s1, err := Smooth(tr, Config{K: 1, H: 1, D: 0.0667})
	if err != nil {
		t.Fatal(err)
	}
	if v := s1.CheckDelayBound(); v != -1 {
		t.Errorf("K=1 violated the bound at %d (delay %.4f)", v, s1.Delays[v])
	}
}

func TestMovingAverageTracksIdealMoreClosely(t *testing.T) {
	// Section 4.4: the modified algorithm "produces numerous small rate
	// changes over time, but its rate r(t) ... tracks the rate function of
	// ideal smoothing more closely ... In particular, the area difference
	// is smaller."
	tr := paperTrace(t, 270)
	cfgB := Config{K: 1, H: tr.GOP.N, D: 0.2, Variant: Basic}
	cfgM := cfgB
	cfgM.Variant = MovingAverage
	mb := measuresFor(t, tr, cfgB)
	mm := measuresFor(t, tr, cfgM)
	if mm.AreaDiff >= mb.AreaDiff {
		t.Errorf("moving average area diff %.4f not smaller than basic %.4f", mm.AreaDiff, mb.AreaDiff)
	}
	if mm.RateChanges <= mb.RateChanges {
		t.Errorf("moving average should change rate more often: %d vs %d", mm.RateChanges, mb.RateChanges)
	}
}

func TestIdealSmoothing(t *testing.T) {
	// Hand-check: 4 pictures, N = 2, τ = 0.1, sizes 300/100/200/200.
	tr := &trace.Trace{Name: "tiny", Tau: 0.1, GOP: mpeg.GOP{M: 1, N: 2}, Sizes: []int64{300, 100, 200, 200}}
	s, err := Ideal(tr)
	if err != nil {
		t.Fatal(err)
	}
	// Block 0: pictures 0,1; rate (300+100)/0.2 = 2000 b/s; starts at
	// 2·0.1 = 0.2 (both arrived).
	if math.Abs(s.Rates[0]-2000) > 1e-9 || math.Abs(s.Rates[1]-2000) > 1e-9 {
		t.Fatalf("block 0 rate %v/%v", s.Rates[0], s.Rates[1])
	}
	if math.Abs(s.Start[0]-0.2) > 1e-9 {
		t.Fatalf("block 0 start %v", s.Start[0])
	}
	// d_0 = 0.2 + 300/2000 = 0.35; d_1 = 0.35 + 0.05 = 0.4.
	if math.Abs(s.Depart[0]-0.35) > 1e-9 || math.Abs(s.Depart[1]-0.4) > 1e-9 {
		t.Fatalf("block 0 departs %v/%v", s.Depart[0], s.Depart[1])
	}
	// Block 1: rate 400/0.2 = 2000; arrivals complete at 0.4; prev depart
	// 0.4 → start 0.4.
	if math.Abs(s.Start[2]-0.4) > 1e-9 {
		t.Fatalf("block 1 start %v", s.Start[2])
	}
	// delay_0 = 0.35 − 0 = 0.35.
	if math.Abs(s.Delays[0]-0.35) > 1e-9 {
		t.Fatalf("delay_0 %v", s.Delays[0])
	}
}

func TestIdealDelaysExceedBasic(t *testing.T) {
	// Figure 5: ideal smoothing delays are much larger than the basic
	// algorithm's with K=1 (pictures wait for the whole pattern).
	tr := paperTrace(t, 270)
	basic, err := Smooth(tr, Config{K: 1, H: 9, D: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	ideal, err := Ideal(tr)
	if err != nil {
		t.Fatal(err)
	}
	var meanBasic, meanIdeal float64
	for i := range basic.Delays {
		meanBasic += basic.Delays[i]
		meanIdeal += ideal.Delays[i]
	}
	if meanIdeal <= meanBasic {
		t.Errorf("ideal mean delay %.4f not larger than basic %.4f",
			meanIdeal/float64(tr.Len()), meanBasic/float64(tr.Len()))
	}
}

func TestIdealPartialLastBlock(t *testing.T) {
	tr := &trace.Trace{Name: "partial", Tau: 0.1, GOP: mpeg.GOP{M: 1, N: 3}, Sizes: []int64{100, 100, 100, 600}}
	s, err := Ideal(tr)
	if err != nil {
		t.Fatal(err)
	}
	// Last block has one picture: rate 600/0.1 = 6000.
	if math.Abs(s.Rates[3]-6000) > 1e-9 {
		t.Fatalf("partial block rate %v", s.Rates[3])
	}
}

func TestEstimators(t *testing.T) {
	tr := paperTrace(t, 90)
	now := 30 * tr.Tau // pictures 0..29 arrived
	v := View{tau: tr.Tau, gop: tr.GOP, sizes: tr.Sizes, now: now}

	if !v.Arrived(29) || v.Arrived(30) {
		t.Fatal("arrival horizon wrong")
	}

	// Pattern estimator returns S_{j-N} when available.
	pat := PatternEstimator{}
	if got := pat.Estimate(35, v); got != tr.Sizes[35-9] {
		t.Errorf("pattern estimate %d, want S_26 = %d", got, tr.Sizes[26])
	}
	// Deep future: walks back pattern by pattern to the newest arrived.
	if got := pat.Estimate(35+9, v); got != tr.Sizes[35-9] {
		t.Errorf("deep pattern estimate %d, want %d", got, tr.Sizes[26])
	}
	// Start of sequence with nothing arrived: defaults.
	v0 := View{tau: tr.Tau, gop: tr.GOP, sizes: tr.Sizes, now: 0}
	if got := pat.Estimate(0, v0); got != DefaultInitialSizes[mpeg.TypeI] {
		t.Errorf("initial I estimate %d", got)
	}
	if got := pat.Estimate(1, v0); got != DefaultInitialSizes[mpeg.TypeB] {
		t.Errorf("initial B estimate %d", got)
	}
	if got := pat.Estimate(3, v0); got != DefaultInitialSizes[mpeg.TypeP] {
		t.Errorf("initial P estimate %d", got)
	}
	custom := PatternEstimator{Initial: map[mpeg.PictureType]int64{mpeg.TypeI: 7}}
	if got := custom.Estimate(0, v0); got != 7 {
		t.Errorf("custom initial estimate %d", got)
	}

	// Type-mean averages arrived same-type pictures.
	tm := TypeMeanEstimator{}
	var sum, n int64
	for j := 0; j < 30; j++ {
		if tr.GOP.TypeOf(j) == mpeg.TypeI {
			sum += tr.Sizes[j]
			n++
		}
	}
	if got := tm.Estimate(36, v); got != sum/n {
		t.Errorf("type-mean estimate %d, want %d", got, sum/n)
	}
	if got := tm.Estimate(0, v0); got != DefaultInitialSizes[mpeg.TypeI] {
		t.Errorf("type-mean cold start %d", got)
	}

	// EWMA lies between min and max of arrived same-type sizes.
	ew := EWMAEstimator{Alpha: 0.5}
	est := ew.Estimate(36, v)
	var min, max int64 = math.MaxInt64, 0
	for j := 0; j < 30; j++ {
		if tr.GOP.TypeOf(j) == mpeg.TypeI {
			if tr.Sizes[j] < min {
				min = tr.Sizes[j]
			}
			if tr.Sizes[j] > max {
				max = tr.Sizes[j]
			}
		}
	}
	if est < min || est > max {
		t.Errorf("EWMA estimate %d outside [%d, %d]", est, min, max)
	}

	// Oracle returns the true size.
	or := OracleEstimator{}
	if got := or.Estimate(50, v); got != tr.Sizes[50] {
		t.Errorf("oracle estimate %d", got)
	}

	for _, e := range []Estimator{pat, tm, ew, or} {
		if e.Name() == "" {
			t.Error("estimator has empty name")
		}
	}
}

func TestSmoothRejectsBadInput(t *testing.T) {
	tr := flatTrace(5, 1000, 0.1)
	if _, err := Smooth(tr, Config{K: 1, H: 0, D: 0.3}); err == nil {
		t.Error("H=0 should fail")
	}
	bad := &trace.Trace{Name: "bad", Tau: 0, GOP: mpeg.GOP{M: 1, N: 1}, Sizes: []int64{1}}
	if _, err := Smooth(bad, Config{K: 1, H: 1, D: 0.3}); err == nil {
		t.Error("invalid trace should fail")
	}
	if _, err := Ideal(bad); err == nil {
		t.Error("Ideal with invalid trace should fail")
	}
}

func TestPiecewiseCBR(t *testing.T) {
	tr := paperTrace(t, 270)
	// Window 1: every picture at its own rate (raw transmission shape).
	w1, err := PiecewiseCBR(tr, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Window = trace length: a single CBR rate — SD exactly 0.
	wAll, err := PiecewiseCBR(tr, tr.Len())
	if err != nil {
		t.Fatal(err)
	}
	fAll, err := wAll.RateFunc()
	if err != nil {
		t.Fatal(err)
	}
	if fAll.Std() > 1e-6 {
		t.Fatalf("full-window CBR has SD %v", fAll.Std())
	}
	// SD shrinks and delay grows monotonically across windows.
	var prevStd = math.Inf(1)
	var prevDelay float64
	for _, w := range []int{1, 9, 27, 90, 270} {
		s, err := PiecewiseCBR(tr, w)
		if err != nil {
			t.Fatal(err)
		}
		f, err := s.RateFunc()
		if err != nil {
			t.Fatal(err)
		}
		if v := s.CheckConservation(); v != -1 {
			t.Fatalf("window %d: conservation violated at %d", w, v)
		}
		std := f.Std()
		if std > prevStd*1.01 {
			t.Errorf("window %d: SD %.0f worse than smaller window's %.0f", w, std, prevStd)
		}
		maxDelay := s.MaxDelay()
		if maxDelay < prevDelay*0.99 {
			t.Errorf("window %d: max delay %.3f below smaller window's %.3f", w, maxDelay, prevDelay)
		}
		prevStd, prevDelay = std, maxDelay
	}
	// Ideal is exactly PiecewiseCBR at the pattern length.
	ideal, err := Ideal(tr)
	if err != nil {
		t.Fatal(err)
	}
	wN, err := PiecewiseCBR(tr, tr.GOP.N)
	if err != nil {
		t.Fatal(err)
	}
	for j := range ideal.Rates {
		if ideal.Rates[j] != wN.Rates[j] {
			t.Fatalf("Ideal != PiecewiseCBR(N) at %d", j)
		}
	}
	_ = w1
	if _, err := PiecewiseCBR(tr, 0); err == nil {
		t.Fatal("window 0 should fail")
	}
}

func TestScheduleWriteCSV(t *testing.T) {
	tr := paperTrace(t, 27)
	s, err := Smooth(tr, Config{K: 1, H: 9, D: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	// Metadata line + header + one row per picture.
	if len(lines) != 2+tr.Len() {
		t.Fatalf("%d lines, want %d", len(lines), 2+tr.Len())
	}
	if !strings.HasPrefix(lines[0], "# name=Driving1 K=1 H=9") {
		t.Fatalf("metadata line %q", lines[0])
	}
	if !strings.HasPrefix(lines[2], "0,I,") {
		t.Fatalf("first row %q", lines[2])
	}
}

func TestSmoothScalesToLongTraces(t *testing.T) {
	// An hour-ish workload: 36,000 pictures (20 minutes at 30 pic/s).
	short := paperTrace(t, 360)
	long, err := short.Repeat(100)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Smooth(long, Config{K: 1, H: 9, D: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if v := s.CheckDelayBound(); v != -1 {
		t.Fatalf("delay bound violated at %d", v)
	}
	if v := s.CheckContinuousService(); v != -1 {
		t.Fatalf("continuous service violated at %d", v)
	}
}

func TestVariantString(t *testing.T) {
	if Basic.String() != "basic" || MovingAverage.String() != "moving-average" {
		t.Error("variant names wrong")
	}
}
