package netsim

import (
	"fmt"
	"math"
)

// ShaperConfig parameterizes a limited-bandwidth connection in the
// fluid pipeline: a dual-rate token-bucket shaper (the QoS-style
// SCR/PCR/MBS contract of an access link). It generalizes the cell
// policer in policer.go: where the Policer marks non-conforming traffic,
// the Shaper delays it in an unbounded queue — trading the loss for
// shaping delay, which is exactly the trade-off lossless smoothing
// exists to avoid.
type ShaperConfig struct {
	// Sustained is the connection's sustained rate (token refill), bits/s.
	Sustained float64
	// Peak caps the instantaneous output rate, bits/s (0 = Sustained:
	// a pure leaky bucket with no burst passthrough).
	Peak float64
	// BurstBits is the token-bucket depth in bits (0 = no burst
	// tolerance). The bucket starts full.
	BurstBits float64
}

// Shaper is the fluid dual-rate token bucket: output follows input up
// to Peak while tokens last, falls back to Sustained when the bucket
// empties, and queues the excess. It sits between a FluidSource and
// the FluidMux, implementing rateSink upstream and feeding the mux
// downstream; its only events are its own state transitions (token
// depletion, queue drain), so it adds O(1) events per input breakpoint.
type Shaper struct {
	eng *Engine
	mux *FluidMux
	id  int

	sustained float64
	peak      float64
	burst     float64

	tokens     float64 // bits available for above-sustained bursts
	backlog    float64 // queued bits awaiting tokens/bandwidth
	inRate     float64
	outRate    float64
	lastT      float64
	maxBacklog float64
	scheduledT float64 // next transition already scheduled (+Inf: none)
}

// NewShaper creates a shaper feeding stream id of the mux.
func NewShaper(eng *Engine, mux *FluidMux, id int, cfg ShaperConfig) (*Shaper, error) {
	if cfg.Sustained <= 0 {
		return nil, fmt.Errorf("netsim: non-positive sustained rate %v", cfg.Sustained)
	}
	peak := cfg.Peak
	if peak == 0 {
		peak = cfg.Sustained
	}
	if peak < cfg.Sustained {
		return nil, fmt.Errorf("netsim: peak %v below sustained %v", peak, cfg.Sustained)
	}
	if cfg.BurstBits < 0 {
		return nil, fmt.Errorf("netsim: negative burst %v", cfg.BurstBits)
	}
	return &Shaper{
		eng:        eng,
		mux:        mux,
		id:         id,
		sustained:  cfg.Sustained,
		peak:       peak,
		burst:      cfg.BurstBits,
		tokens:     cfg.BurstBits,
		scheduledT: math.Inf(1),
	}, nil
}

// MaxDelay returns the worst shaping delay imposed so far: the backlog
// high-water mark divided by the sustained drain rate.
func (s *Shaper) MaxDelay() float64 { return s.maxBacklog / s.sustained }

// advanceTo integrates tokens and backlog to time t under the current
// (constant) input and output rates. Both trajectories are linear and
// their zero crossings are scheduled as transition events, so clamping
// here only absorbs tick-rounding residue.
func (s *Shaper) advanceTo(t float64) {
	dt := t - s.lastT
	if dt <= 0 {
		return
	}
	s.lastT = t
	s.tokens += (s.sustained - s.outRate) * dt
	if s.tokens > s.burst {
		s.tokens = s.burst
	} else if s.tokens < 0 {
		s.tokens = 0
	}
	s.backlog += (s.inRate - s.outRate) * dt
	if s.backlog < 0 {
		s.backlog = 0
	}
	if s.backlog > s.maxBacklog {
		s.maxBacklog = s.backlog
	}
}

// apply recomputes the output rate from the current state and, when the
// state has a finite next transition (token depletion or queue drain),
// schedules it.
func (s *Shaper) apply(t float64) {
	allowed := s.sustained
	if s.tokens > 0 {
		allowed = s.peak
	}
	out := allowed
	if s.backlog <= 0 {
		out = math.Min(s.inRate, allowed)
	}
	if out != s.outRate {
		s.outRate = out
		s.mux.setRate(s.id, t, out)
	}
	next := math.Inf(1)
	if dTok := s.sustained - out; s.tokens > 0 && dTok < 0 {
		next = t + s.tokens/(-dTok)
	}
	if dQ := s.inRate - out; s.backlog > 0 && dQ < 0 {
		next = math.Min(next, t+s.backlog/(-dQ))
	}
	if next != s.scheduledT && !math.IsInf(next, 1) {
		s.scheduledT = next
		s.eng.Schedule(s.eng.TickAt(next), s)
	}
}

// setRate receives the upstream (source) rate change. The id is the
// stream's; the shaper already carries it.
func (s *Shaper) setRate(_ int, t, rate float64) {
	s.advanceTo(t)
	s.inRate = rate
	s.apply(s.lastT)
}

// Fire handles a scheduled state transition. Stale transitions (made
// obsolete by a later input change) are harmless checkpoints: advancing
// and reapplying the current state is idempotent.
func (s *Shaper) Fire(now Tick) {
	s.advanceTo(s.eng.SecondsOf(now))
	s.apply(s.lastT)
}

// flush advances the shaper's own accounting (backlog high-water) to
// the horizon; the mux's view needs no flush because the output rate
// genuinely holds until the next un-fired transition.
func (s *Shaper) flush(t float64) {
	s.advanceTo(t)
}
