package trace

import (
	"fmt"
	"math"
	"math/rand"

	"mpegsmooth/internal/metrics"
)

// OnOffParetoConfig parameterizes a seeded on/off background traffic
// source with Pareto-distributed sojourn times. With shape 1 < α < 2
// the on/off periods are heavy-tailed, and the superposition of many
// such sources exhibits long-range dependence (the Taqqu/Willinger
// construction) — the self-similar VBR background model of
// Kalyanaraman et al. (cs/9809045) against which smoothed video must
// share a finite-buffer link.
type OnOffParetoConfig struct {
	// PeakRate is the emission rate while ON, bits/s.
	PeakRate float64
	// MeanOn and MeanOff are the mean sojourn times in seconds.
	MeanOn, MeanOff float64
	// Alpha is the Pareto shape (default 1.5). Must be > 1 so the means
	// exist; values toward 1 give heavier tails and stronger LRD.
	Alpha float64
	// Duration is the generated horizon in seconds.
	Duration float64
	// TruncateAt caps a single sojourn at this multiple of its mean
	// (default 100) so one astronomically long period cannot consume
	// the whole horizon.
	TruncateAt float64
	// Seed makes the source deterministic.
	Seed int64
}

// OnOffPareto generates the rate function of one on/off-Pareto source:
// alternating segments at PeakRate and zero whose durations are drawn
// from truncated Pareto distributions with the configured means. The
// same seed always yields the same function.
func OnOffPareto(cfg OnOffParetoConfig) (*metrics.StepFunc, error) {
	if cfg.PeakRate <= 0 {
		return nil, fmt.Errorf("trace: non-positive peak rate %v", cfg.PeakRate)
	}
	if cfg.MeanOn <= 0 || cfg.MeanOff <= 0 {
		return nil, fmt.Errorf("trace: non-positive mean sojourn (on %v, off %v)", cfg.MeanOn, cfg.MeanOff)
	}
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("trace: non-positive duration %v", cfg.Duration)
	}
	alpha := cfg.Alpha
	if alpha == 0 {
		alpha = 1.5
	}
	if alpha <= 1 {
		return nil, fmt.Errorf("trace: Pareto shape %v must exceed 1 (finite mean)", alpha)
	}
	trunc := cfg.TruncateAt
	if trunc == 0 {
		trunc = 100
	}
	if trunc <= 1 {
		return nil, fmt.Errorf("trace: truncation %v must exceed 1", trunc)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	pareto := func(mean float64) float64 {
		// Scale xm so the (untruncated) mean is the configured one:
		// E[X] = xm·α/(α-1).
		xm := mean * (alpha - 1) / alpha
		d := xm * math.Pow(1-rng.Float64(), -1/alpha)
		if bound := mean * trunc; d > bound {
			d = bound
		}
		return d
	}
	var times, values []float64
	appendSeg := func(t, v float64) {
		if n := len(times); n > 0 && t <= times[n-1] {
			values[n-1] = v // degenerate zero-length predecessor
			return
		}
		times = append(times, t)
		values = append(values, v)
	}
	// Random initial phase: start OFF for a uniform fraction of one
	// mean off period, decorrelating same-parameter sources by seed.
	appendSeg(0, 0)
	t := rng.Float64() * cfg.MeanOff
	on := true
	for t < cfg.Duration {
		if on {
			appendSeg(t, cfg.PeakRate)
			t += pareto(cfg.MeanOn)
		} else {
			appendSeg(t, 0)
			t += pareto(cfg.MeanOff)
		}
		on = !on
	}
	return metrics.NewStepFunc(times, values, cfg.Duration)
}
