// Livesmoother: embed the algorithm in a streaming pipeline.
//
// A live encoder produces picture sizes one at a time; the incremental
// LiveSmoother emits each rate decision the moment its inputs are
// determined (with K=1, essentially one picture behind the encoder). The
// decisions stream through a token-bucket policer — the network checking
// that we honour our own notify(i, rate) declarations — and the final
// schedule's decoder-side requirements are analyzed against the MPEG
// model-decoder (VBV) rules.
package main

import (
	"fmt"
	"log"

	"mpegsmooth"
)

func main() {
	gop := mpegsmooth.GOP{M: 3, N: 9}
	const tau = 1.0 / 30

	// The "encoder": a trace generator standing in for live capture.
	tr, err := mpegsmooth.Driving1(270, 1)
	if err != nil {
		log.Fatal(err)
	}

	live, err := mpegsmooth.NewLiveSmoother(tau, gop, mpegsmooth.Config{K: 1, H: gop.N, D: 0.2})
	if err != nil {
		log.Fatal(err)
	}
	policer, err := mpegsmooth.NewPolicer(4 * mpegsmooth.CellBits)
	if err != nil {
		log.Fatal(err)
	}

	var decisions []mpegsmooth.Decision
	maxLag := 0
	feed := func(ds []mpegsmooth.Decision) {
		for _, d := range ds {
			// Declare the rate, then offer the picture's bits paced at it.
			if err := policer.SetRate(d.Start, d.Rate); err != nil {
				log.Fatal(err)
			}
			bits, t := float64(tr.Sizes[d.Picture]), d.Start
			for bits > 0 {
				cell := float64(mpegsmooth.CellBits)
				if bits < cell {
					cell = bits
				}
				ok, err := policer.Offer(t, cell)
				if err != nil {
					log.Fatal(err)
				}
				if !ok {
					log.Fatalf("picture %d: our own declaration rejected us", d.Picture)
				}
				bits -= cell
				t += cell / d.Rate
			}
			decisions = append(decisions, d)
		}
	}
	for i, size := range tr.Sizes {
		ds, err := live.Push(size)
		if err != nil {
			log.Fatal(err)
		}
		if lag := i + 1 - len(decisions) - len(ds); lag > maxLag {
			maxLag = lag
		}
		feed(ds)
	}
	feed(live.Close())

	fmt.Printf("streamed %d pictures; max decision lag %d pictures behind the encoder\n",
		len(decisions), maxLag)
	fmt.Printf("policer: %d cells conforming, %d dropped\n", policer.Conforming(), policer.Dropped())

	// The live schedule equals the offline one; analyze its decoder-side
	// demands.
	sched, err := mpegsmooth.Smooth(tr, mpegsmooth.Config{K: 1, H: gop.N, D: 0.2})
	if err != nil {
		log.Fatal(err)
	}
	for i, d := range decisions {
		if d.Rate != sched.Rates[i] {
			log.Fatalf("live decision %d diverges from offline schedule", i)
		}
	}
	a, err := mpegsmooth.AnalyzeVBV(sched)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nMPEG model-decoder view of this schedule:\n")
	fmt.Printf("  minimum start-up delay %.4f s (Theorem 1 bounds it by D = 0.2)\n", a.StartupDelay)
	fmt.Printf("  peak decoder buffer    %.0f bits (%.1f KB), at picture %d\n",
		a.PeakBuffer, a.PeakBuffer/8/1024, a.PeakAtPicture)
	if err := mpegsmooth.CheckVBV(sched, a.StartupDelay, a.PeakBuffer); err != nil {
		log.Fatal(err)
	}
	fmt.Println("  decoding at exactly that start-up and buffer: no underflow, no overflow")
}
