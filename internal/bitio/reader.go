package bitio

import (
	"errors"
	"fmt"
	"io"
)

// ErrNoStartCode is returned by NextStartCode when the remainder of the
// stream contains no start-code prefix.
var ErrNoStartCode = errors.New("bitio: no start code in remaining stream")

// Reader consumes bits MSB-first from a byte slice.
type Reader struct {
	data []byte
	pos  int64 // bit position from the start of data
}

// NewReader returns a Reader over data. The Reader does not copy data.
func NewReader(data []byte) *Reader {
	return &Reader{data: data}
}

// BitPos returns the current bit offset from the start of the stream.
func (r *Reader) BitPos() int64 { return r.pos }

// Remaining returns the number of unread bits.
func (r *Reader) Remaining() int64 { return int64(len(r.data))*8 - r.pos }

// ReadBits reads n bits MSB-first. n must be in [0, 32].
func (r *Reader) ReadBits(n uint) (uint32, error) {
	if n > 32 {
		panic(fmt.Sprintf("bitio: ReadBits n=%d out of range", n))
	}
	v, err := r.PeekBits(n)
	if err != nil {
		return 0, err
	}
	r.pos += int64(n)
	return v, nil
}

// PeekBits returns the next n bits without consuming them.
func (r *Reader) PeekBits(n uint) (uint32, error) {
	if int64(n) > r.Remaining() {
		return 0, io.ErrUnexpectedEOF
	}
	var v uint32
	pos := r.pos
	for rem := n; rem > 0; {
		byteIdx := pos >> 3
		bitOff := uint(pos & 7)
		avail := 8 - bitOff
		take := avail
		if take > rem {
			take = rem
		}
		chunk := uint32(r.data[byteIdx]) >> (avail - take) & mask32(take)
		v = v<<take | chunk
		pos += int64(take)
		rem -= take
	}
	return v, nil
}

// ReadBit reads a single bit.
func (r *Reader) ReadBit() (uint32, error) { return r.ReadBits(1) }

// Aligned reports whether the reader is at a byte boundary.
func (r *Reader) Aligned() bool { return r.pos&7 == 0 }

// Align advances to the next byte boundary, discarding stuffing bits.
func (r *Reader) Align() {
	r.pos = (r.pos + 7) &^ 7
}

// NextStartCode byte-aligns the reader and scans forward to the next
// start-code prefix (0x000001), leaving the reader positioned at the first
// byte of the prefix. It returns the start-code value byte without
// consuming the code itself. Decoders use this to resynchronize after a
// bitstream error: skip to the next slice or picture start code and resume.
func (r *Reader) NextStartCode() (byte, error) {
	r.Align()
	i := int(r.pos >> 3)
	d := r.data
	for ; i+3 < len(d); i++ {
		if d[i] == 0 && d[i+1] == 0 && d[i+2] == 1 {
			r.pos = int64(i) * 8
			return d[i+3], nil
		}
	}
	r.pos = int64(len(d)) * 8
	return 0, ErrNoStartCode
}

// ReadStartCode byte-aligns, verifies a start-code prefix at the current
// position, and consumes all 32 bits, returning the code value byte.
func (r *Reader) ReadStartCode() (byte, error) {
	r.Align()
	v, err := r.ReadBits(24)
	if err != nil {
		return 0, err
	}
	if v != StartCodePrefix {
		return 0, fmt.Errorf("bitio: expected start-code prefix, got %#06x at bit %d", v, r.pos-24)
	}
	code, err := r.ReadBits(8)
	if err != nil {
		return 0, err
	}
	return byte(code), nil
}

// SkipBits advances the reader by n bits.
func (r *Reader) SkipBits(n int64) error {
	if n < 0 || n > r.Remaining() {
		return io.ErrUnexpectedEOF
	}
	r.pos += n
	return nil
}

// SeekBit positions the reader at an absolute bit offset.
func (r *Reader) SeekBit(pos int64) error {
	if pos < 0 || pos > int64(len(r.data))*8 {
		return fmt.Errorf("bitio: seek to %d out of range", pos)
	}
	r.pos = pos
	return nil
}
