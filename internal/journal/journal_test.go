package journal

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"mpegsmooth/internal/mpeg"
	"mpegsmooth/internal/transport"
)

func testHello(nonce uint64) transport.StreamHello {
	return transport.StreamHello{
		Tau: 1.0 / 30, GOP: mpeg.GOP{M: 3, N: 9},
		K: 1, D: 0.2, Pictures: 60, PeakRate: 2.5e6,
		Nonce: nonce,
	}
}

func testStream(token uint64) StreamRecord {
	return StreamRecord{Token: token, Hello: testHello(token)}
}

func testTomb(token uint64, pictures int) TombstoneRecord {
	return TombstoneRecord{
		Token: token, Nonce: token, Pictures: pictures,
		HashState: []byte{1, 2, 3, 4, 5, 6, 7, 8},
		// Fixed but far-future: compaction drops tombstones past their
		// journaled expiry, and these tests want theirs to survive.
		Expires: time.Unix(4102444800, 0),
	}
}

// noFlush disables the background flusher so tests control batching.
const noFlush = -1 * time.Millisecond

func mustOpen(t *testing.T, fs FS) *Journal {
	t.Helper()
	j, err := Open(Config{FS: fs, FlushInterval: noFlush, Logf: t.Logf})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return j
}

// reopen closes j and opens a fresh journal over the same FS, returning
// the recovered state — what a restarted server would rebuild from.
func reopen(t *testing.T, j *Journal, fs FS) (*Journal, State) {
	t.Helper()
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	next := mustOpen(t, fs)
	return next, next.State()
}

// buildSegment assembles raw segment bytes from records — for crafting
// exact on-disk shapes (boundaries, torn tails) without going through a
// Journal.
func buildSegment(frames ...[]byte) []byte {
	data := append([]byte(nil), segMagic...)
	for _, f := range frames {
		data = append(data, f...)
	}
	return data
}

func TestEmptyJournalOpens(t *testing.T) {
	mem := NewMemFS()
	j := mustOpen(t, mem)
	st := j.State()
	if len(st.Streams) != 0 || len(st.Tombstones) != 0 {
		t.Fatalf("fresh journal recovered state: %+v", st)
	}
	if s := j.Stats(); s.ReplayedRecords != 0 || s.TruncatedTailBytes != 0 {
		t.Fatalf("fresh journal stats: %+v", s)
	}
	// And it is immediately usable.
	if _, err := j.Admitted(testStream(1)); err != nil {
		t.Fatalf("append to fresh journal: %v", err)
	}
	j, st = reopen(t, j, mem)
	defer j.Close()
	if len(st.Streams) != 1 || st.Streams[1] == nil {
		t.Fatalf("admission lost across reopen: %+v", st)
	}
}

// TestRoundTripAcrossReopen: the full record vocabulary survives a
// close/reopen cycle bit-exactly — including hello float bits, which
// the server's nonce dedup compares with struct equality.
func TestRoundTripAcrossReopen(t *testing.T) {
	mem := NewMemFS()
	j := mustOpen(t, mem)

	a, b, c := testStream(1), testStream(2), testStream(3)
	b.Hello.Integrity = transport.IntegrityHMAC
	for _, rec := range []StreamRecord{a, b, c} {
		if _, err := j.Admitted(rec); err != nil {
			t.Fatal(err)
		}
	}
	j.Watermark(1, 7, []byte{0xAA, 0xBB})
	j.Watermark(2, 12, []byte{0xCC})
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	tomb := testTomb(2, 60)
	if _, err := j.Completed(tomb); err != nil {
		t.Fatal(err)
	}
	if _, err := j.Expired(3, 3, ExpireFailed); err != nil {
		t.Fatal(err)
	}

	j, st := reopen(t, j, mem)
	defer j.Close()
	if len(st.Streams) != 1 {
		t.Fatalf("want 1 live stream, got %+v", st.Streams)
	}
	got := st.Streams[1]
	if got == nil || got.Hello != a.Hello || got.Watermark != 7 ||
		!reflect.DeepEqual(got.HashState, []byte{0xAA, 0xBB}) {
		t.Fatalf("stream 1 recovered wrong: %+v", got)
	}
	if len(st.Tombstones) != 1 {
		t.Fatalf("want 1 tombstone, got %+v", st.Tombstones)
	}
	tb := st.Tombstones[2]
	if tb == nil || tb.Nonce != 2 || tb.Pictures != 60 ||
		!reflect.DeepEqual(tb.HashState, tomb.HashState) ||
		tb.Expires.UnixNano() != tomb.Expires.UnixNano() {
		t.Fatalf("tombstone recovered wrong: %+v", tb)
	}
	if _, live := st.Streams[3]; live {
		t.Fatal("expired stream resurrected")
	}
}

// TestReplayIdempotence: replaying the same journal any number of
// times — including a journal whose every segment is duplicated, the
// crash-during-compaction shape — yields identical state.
func TestReplayIdempotence(t *testing.T) {
	mem := NewMemFS()
	j := mustOpen(t, mem)
	for tok := uint64(1); tok <= 4; tok++ {
		if _, err := j.Admitted(testStream(tok)); err != nil {
			t.Fatal(err)
		}
	}
	j.Watermark(1, 9, []byte{9})
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := j.Completed(testTomb(2, 60)); err != nil {
		t.Fatal(err)
	}
	if _, err := j.Expired(4, 4, ExpireFailed); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopening twice more yields the same recovered state each time.
	j2 := mustOpen(t, mem)
	s2 := j2.State()
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	j3 := mustOpen(t, mem)
	s3 := j3.State()
	if err := j3.Close(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s2, s3) {
		t.Fatalf("replay not idempotent across reopens:\n%+v\nvs\n%+v", s2, s3)
	}

	// Stronger: duplicate the surviving segment wholesale and replay
	// both copies — state must not change.
	names, err := mem.ReadDir()
	if err != nil {
		t.Fatal(err)
	}
	dup := NewMemFS()
	for i, n := range names {
		data, err := mem.ReadFile(n)
		if err != nil {
			t.Fatal(err)
		}
		dup.WriteFile(segName(uint64(2*i+1)), data)
		dup.WriteFile(segName(uint64(2*i+2)), data)
	}
	j4 := mustOpen(t, dup)
	s4 := j4.State()
	defer j4.Close()
	if !reflect.DeepEqual(s2, s4) {
		t.Fatalf("duplicated segments changed the state:\n%+v\nvs\n%+v", s2, s4)
	}
}

// TestCrashDuringCompaction: with removes failing, every compaction
// leaves the old segments lying next to the new snapshot — duplicate
// records everywhere. Recovery must fold them to the same state.
func TestCrashDuringCompaction(t *testing.T) {
	mem := NewMemFS()
	faulty := NewFaultFS(mem, FaultConfig{FailRemoves: true})
	j, err := Open(Config{FS: faulty, FlushInterval: noFlush, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Admitted(testStream(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := j.Admitted(testStream(2)); err != nil {
		t.Fatal(err)
	}
	j.Watermark(1, 5, []byte{5})
	if _, err := j.Completed(testTomb(2, 60)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := j.Compact(); err != nil {
			t.Fatalf("compact %d: %v", i, err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	names, _ := mem.ReadDir()
	if len(names) < 4 {
		t.Fatalf("expected lingering segments after failed removes, got %v", names)
	}

	// Replay over the pile of duplicates (removes now working again).
	j2 := mustOpen(t, mem)
	defer j2.Close()
	st := j2.State()
	if len(st.Streams) != 1 || st.Streams[1] == nil || st.Streams[1].Watermark != 5 {
		t.Fatalf("streams after duplicate-heavy replay: %+v", st.Streams)
	}
	if len(st.Tombstones) != 1 || st.Tombstones[2] == nil {
		t.Fatalf("tombstones after duplicate-heavy replay: %+v", st.Tombstones)
	}
	// The admit duplicates must not have resurrected stream 2 past its
	// completion: tombstones absorb admits.
	if _, live := st.Streams[2]; live {
		t.Fatal("completed stream resurrected by duplicate admit record")
	}
}

// TestOpenEdgeCases covers the on-disk shapes recovery must take in
// stride: empty files, header-only segments, a journal ending exactly
// on a record boundary, torn tails, bad magic, garbage mid-file.
func TestOpenEdgeCases(t *testing.T) {
	admit1 := encodeAdmit(testStream(1))
	admit2 := encodeAdmit(testStream(2))

	t.Run("empty file", func(t *testing.T) {
		mem := NewMemFS()
		mem.WriteFile(segName(1), nil)
		j := mustOpen(t, mem)
		defer j.Close()
		if st := j.State(); len(st.Streams) != 0 {
			t.Fatalf("state from empty file: %+v", st)
		}
	})

	t.Run("header only", func(t *testing.T) {
		mem := NewMemFS()
		mem.WriteFile(segName(1), buildSegment())
		j := mustOpen(t, mem)
		defer j.Close()
		if s := j.Stats(); s.ReplayedRecords != 0 || s.TruncatedTailBytes != 0 {
			t.Fatalf("header-only segment stats: %+v", s)
		}
	})

	t.Run("exact record boundary", func(t *testing.T) {
		mem := NewMemFS()
		mem.WriteFile(segName(1), buildSegment(admit1, admit2))
		j := mustOpen(t, mem)
		defer j.Close()
		st := j.State()
		if len(st.Streams) != 2 {
			t.Fatalf("want both records from boundary-exact segment, got %+v", st.Streams)
		}
		if s := j.Stats(); s.TruncatedTailBytes != 0 {
			t.Fatalf("boundary-exact segment was truncated: %+v", s)
		}
	})

	t.Run("torn tail", func(t *testing.T) {
		for cut := 1; cut < len(admit2); cut++ {
			mem := NewMemFS()
			mem.WriteFile(segName(1), buildSegment(admit1, admit2[:cut]))
			j := mustOpen(t, mem)
			st := j.State()
			if len(st.Streams) != 1 || st.Streams[1] == nil {
				t.Fatalf("cut %d: want only the intact record, got %+v", cut, st.Streams)
			}
			if s := j.Stats(); s.TruncatedTailBytes != int64(cut) {
				t.Fatalf("cut %d: truncated %d bytes, want %d", cut, s.TruncatedTailBytes, cut)
			}
			j.Close()
		}
	})

	t.Run("bad magic", func(t *testing.T) {
		mem := NewMemFS()
		mem.WriteFile(segName(1), []byte("JUNKJUNKJUNK"))
		j := mustOpen(t, mem)
		defer j.Close()
		if st := j.State(); len(st.Streams) != 0 {
			t.Fatalf("state from bad-magic segment: %+v", st)
		}
	})

	t.Run("garbage mid file", func(t *testing.T) {
		mem := NewMemFS()
		data := buildSegment(admit1)
		data = append(data, 0xDE, 0xAD, 0xBE, 0xEF)
		data = append(data, admit2...)
		mem.WriteFile(segName(1), data)
		j := mustOpen(t, mem)
		defer j.Close()
		st := j.State()
		// Scanning stops at the first damage: record 2 is unreachable,
		// but nothing corrupt is ever surfaced as a record.
		if len(st.Streams) != 1 || st.Streams[1] == nil {
			t.Fatalf("garbage mid-file: got %+v", st.Streams)
		}
	})

	t.Run("non-segment files ignored", func(t *testing.T) {
		mem := NewMemFS()
		mem.WriteFile("README", []byte("not a segment"))
		mem.WriteFile(segName(1), buildSegment(admit1))
		j := mustOpen(t, mem)
		defer j.Close()
		if st := j.State(); len(st.Streams) != 1 {
			t.Fatalf("state with stray file present: %+v", st.Streams)
		}
	})
}

// TestScanSegmentTruncationFixedPoint: for every possible cut of a
// valid segment, the scan's reported valid offset is a fixed point —
// rescanning data[:valid] is clean and yields the identical records.
// This is what makes torn-tail repair deterministic.
func TestScanSegmentTruncationFixedPoint(t *testing.T) {
	data := buildSegment(
		encodeAdmit(testStream(1)),
		encodeWatermark(1, 3, []byte{1, 2}),
		encodeComplete(testTomb(1, 60)),
		encodeExpire(1, 1, ExpireTombstone),
	)
	full, _, err := ScanSegment(data)
	if err != nil || len(full) != 4 {
		t.Fatalf("clean scan: %d records, err %v", len(full), err)
	}
	for cut := 0; cut <= len(data); cut++ {
		recs, valid, err := ScanSegment(data[:cut])
		if cut < len(segMagic) {
			if err == nil {
				t.Fatalf("cut %d: sub-magic data scanned clean", cut)
			}
			continue
		}
		if valid > cut {
			t.Fatalf("cut %d: valid %d past end", cut, valid)
		}
		if cut == len(data) && err != nil {
			t.Fatalf("full data failed scan: %v", err)
		}
		recs2, valid2, err2 := ScanSegment(data[:valid])
		if err2 != nil || valid2 != valid || !reflect.DeepEqual(recs, recs2) {
			t.Fatalf("cut %d: truncation to %d not a fixed point (err %v)", cut, valid, err2)
		}
	}
}

// TestScanSegmentCorruption: flip every byte of a segment, one at a
// time. No corrupted record may ever be surfaced — the scan must return
// a strict prefix of the original records.
func TestScanSegmentCorruption(t *testing.T) {
	data := buildSegment(
		encodeAdmit(testStream(1)),
		encodeWatermark(1, 3, []byte{1, 2}),
		encodeComplete(testTomb(2, 60)),
	)
	orig, _, err := ScanSegment(data)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0xFF
		recs, valid, _ := ScanSegment(mut)
		if valid > len(mut) {
			t.Fatalf("flip %d: valid out of range", i)
		}
		if len(recs) > len(orig) {
			t.Fatalf("flip %d: more records than original", i)
		}
		for k, r := range recs {
			if !reflect.DeepEqual(r, orig[k]) {
				t.Fatalf("flip %d: corrupted record %d surfaced: %+v", i, k, r)
			}
		}
	}
}

// TestTornWriteRepair: an injected torn write fails the append, and the
// journal truncates the segment back so the torn bytes never precede a
// later successful record. The failed fact is simply absent after
// recovery; later facts are intact.
func TestTornWriteRepair(t *testing.T) {
	mem := NewMemFS()
	// Write 1 is Open's snapshot; write 2 is stream 1's admit; write 3
	// (stream 2's admit) tears.
	faulty := NewFaultFS(mem, FaultConfig{FailWrite: 3})
	j, err := Open(Config{FS: faulty, FlushInterval: noFlush, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Admitted(testStream(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := j.Admitted(testStream(2)); err == nil {
		t.Fatal("torn write did not surface an error")
	}
	if _, err := j.Admitted(testStream(3)); err != nil {
		t.Fatalf("append after repair: %v", err)
	}
	if w, _ := faulty.Injected(); w != 1 {
		t.Fatalf("injected %d write faults, want 1", w)
	}
	if s := j.Stats(); s.AppendErrors != 1 {
		t.Fatalf("append errors: %+v", s)
	}
	// The repaired segment is physically clean: a raw scan finds no
	// damage at all.
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	names, _ := mem.ReadDir()
	for _, n := range names {
		data, _ := mem.ReadFile(n)
		if len(data) == 0 {
			continue
		}
		if _, _, err := ScanSegment(data); err != nil {
			t.Fatalf("segment %s not clean after repair: %v", n, err)
		}
	}
	j2 := mustOpen(t, mem)
	defer j2.Close()
	st := j2.State()
	if st.Streams[1] == nil || st.Streams[3] == nil {
		t.Fatalf("intact admissions lost: %+v", st.Streams)
	}
	if _, ok := st.Streams[2]; ok {
		t.Fatal("torn admission resurrected")
	}
}

// TestFsyncFailureDropsRecord: a failed fsync means the fact was never
// durable, so the journal drops it (truncating the unflushed bytes) and
// reports the error — the caller then refuses to act on the fact.
func TestFsyncFailureDropsRecord(t *testing.T) {
	mem := NewMemFS()
	// Sync 1 is Open's snapshot; sync 2 covers stream 1's admit; sync 3
	// (stream 2's admit) fails.
	faulty := NewFaultFS(mem, FaultConfig{FailSync: 3})
	j, err := Open(Config{FS: faulty, FlushInterval: noFlush, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Admitted(testStream(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := j.Admitted(testStream(2)); err == nil {
		t.Fatal("fsync failure did not surface an error")
	}
	if _, err := j.Admitted(testStream(3)); err != nil {
		t.Fatalf("append after fsync failure: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2 := mustOpen(t, mem)
	defer j2.Close()
	st := j2.State()
	if st.Streams[1] == nil || st.Streams[3] == nil {
		t.Fatalf("durable admissions lost: %+v", st.Streams)
	}
	if _, ok := st.Streams[2]; ok {
		t.Fatal("unsynced admission recovered as fact")
	}
}

// truncFailFS makes every Truncate fail — the double-fault shape where
// even repair is impossible and the journal must go read-only rather
// than risk appending after torn bytes.
type truncFailFS struct{ FS }

func (truncFailFS) Truncate(string, int64) error {
	return errors.New("injected truncate failure")
}

func TestUnrepairableAppendBreaksJournal(t *testing.T) {
	mem := NewMemFS()
	faulty := truncFailFS{NewFaultFS(mem, FaultConfig{FailWrite: 2})}
	j, err := Open(Config{FS: faulty, FlushInterval: noFlush, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Admitted(testStream(1)); err == nil {
		t.Fatal("torn write did not surface an error")
	}
	if _, err := j.Admitted(testStream(2)); err == nil {
		t.Fatal("broken journal accepted an append")
	}
	j.Abandon()
	// The disk still holds torn bytes (repair failed), but recovery
	// handles that: it is just a torn tail.
	j2 := mustOpen(t, mem)
	defer j2.Close()
	if st := j2.State(); len(st.Streams) != 0 {
		t.Fatalf("torn record recovered as fact: %+v", st.Streams)
	}
}

// TestWatermarkCoalescing: many watermark notes for one stream cost one
// record per flush, and a stale (lower) mark can never roll state back.
func TestWatermarkCoalescing(t *testing.T) {
	mem := NewMemFS()
	j := mustOpen(t, mem)
	if _, err := j.Admitted(testStream(1)); err != nil {
		t.Fatal(err)
	}
	before := j.Stats().Appends
	for mark := 1; mark <= 50; mark++ {
		j.Watermark(1, mark, []byte{byte(mark)})
	}
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	s := j.Stats()
	if got := s.Appends - before; got != 1 {
		t.Fatalf("50 coalesced watermarks took %d appends, want 1", got)
	}
	if s.WatermarksCoalesced != 50 || s.WatermarkBatches != 1 {
		t.Fatalf("coalescing stats: %+v", s)
	}
	// A stale mark after the fact must not regress the journaled state.
	j.Watermark(1, 10, []byte{10})
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	j, st := reopen(t, j, mem)
	defer j.Close()
	if st.Streams[1].Watermark != 50 {
		t.Fatalf("stale watermark regressed state to %d", st.Streams[1].Watermark)
	}
}

// TestBackgroundFlusher: with a real flush interval, watermarks reach
// the disk without any explicit Flush call.
func TestBackgroundFlusher(t *testing.T) {
	mem := NewMemFS()
	j, err := Open(Config{FS: mem, FlushInterval: 2 * time.Millisecond, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Admitted(testStream(1)); err != nil {
		t.Fatal(err)
	}
	j.Watermark(1, 42, []byte{42})
	deadline := time.Now().Add(5 * time.Second)
	for j.Stats().WatermarkBatches == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background flusher never flushed")
		}
		time.Sleep(time.Millisecond)
	}
	j, st := reopen(t, j, mem)
	defer j.Close()
	if st.Streams[1].Watermark != 42 {
		t.Fatalf("flushed watermark lost: %+v", st.Streams[1])
	}
}

// TestRotationCompacts: appends past SegmentBytes trigger rotation, and
// rotation is compaction — dead state does not survive into the new
// segment, and old segments are removed.
func TestRotationCompacts(t *testing.T) {
	mem := NewMemFS()
	j, err := Open(Config{FS: mem, SegmentBytes: 512, FlushInterval: noFlush, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	for tok := uint64(1); tok <= 40; tok++ {
		if _, err := j.Admitted(testStream(tok)); err != nil {
			t.Fatal(err)
		}
		if tok%2 == 0 {
			if _, err := j.Completed(testTomb(tok, 60)); err != nil {
				t.Fatal(err)
			}
			if _, err := j.Expired(tok, tok, ExpireTombstone); err != nil {
				t.Fatal(err)
			}
		}
	}
	s := j.Stats()
	if s.Rotations < 2 { // at least Open's compaction plus one size-triggered
		t.Fatalf("no size-triggered rotation: %+v", s)
	}
	names, _ := mem.ReadDir()
	if len(names) != 1 {
		t.Fatalf("old segments not removed: %v", names)
	}
	j, st := reopen(t, j, mem)
	defer j.Close()
	if len(st.Streams) != 20 || len(st.Tombstones) != 0 {
		t.Fatalf("recovered %d streams / %d tombstones, want 20 / 0",
			len(st.Streams), len(st.Tombstones))
	}
}

// TestAbandonDropsPending: Abandon is the crash-style close — pending
// watermarks die with it, exactly as a real SIGKILL would drop them.
func TestAbandonDropsPending(t *testing.T) {
	mem := NewMemFS()
	j := mustOpen(t, mem)
	if _, err := j.Admitted(testStream(1)); err != nil {
		t.Fatal(err)
	}
	j.Watermark(1, 5, []byte{5})
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	j.Watermark(1, 30, []byte{30})
	j.Abandon() // no flush: mark 30 must not survive
	j2 := mustOpen(t, mem)
	defer j2.Close()
	if got := j2.State().Streams[1].Watermark; got != 5 {
		t.Fatalf("abandoned watermark recovered: %d, want 5", got)
	}
}

// TestCrashRecoverySoak drives generations of journal activity under
// the power-loss model: after every crash, every fsynced fact must
// survive, no unsynced fact may appear, and recovered watermarks land
// between the last flushed and last noted mark.
func TestCrashRecoverySoak(t *testing.T) {
	type fact struct {
		completed bool
		gone      bool
		pictures  int
		flushed   int
		latest    int
	}
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			cfs := NewCrashFS(NewMemFS())
			durable := map[uint64]*fact{}
			next := uint64(1)
			live := func() []uint64 {
				var out []uint64
				for tok, f := range durable {
					if !f.completed && !f.gone {
						out = append(out, tok)
					}
				}
				return out
			}
			for gen := 0; gen < 12; gen++ {
				j, err := Open(Config{FS: cfs, SegmentBytes: 2048, FlushInterval: noFlush, Logf: t.Logf})
				if err != nil {
					t.Fatalf("gen %d: Open: %v", gen, err)
				}
				st := j.State()
				for tok, f := range durable {
					switch {
					case f.gone:
						_, s := st.Streams[tok]
						_, tb := st.Tombstones[tok]
						if s || tb {
							t.Fatalf("gen %d: expired token %d resurrected", gen, tok)
						}
					case f.completed:
						tb := st.Tombstones[tok]
						if tb == nil || tb.Pictures != f.pictures {
							t.Fatalf("gen %d: durable completion %d lost or wrong: %+v", gen, tok, tb)
						}
					default:
						s := st.Streams[tok]
						if s == nil {
							t.Fatalf("gen %d: durable admission %d lost", gen, tok)
						}
						if s.Watermark < f.flushed || s.Watermark > f.latest {
							t.Fatalf("gen %d: token %d watermark %d outside [%d, %d]",
								gen, tok, s.Watermark, f.flushed, f.latest)
						}
						// The server resumes the stream from here.
						f.flushed, f.latest = s.Watermark, s.Watermark
					}
				}
				for tok := range st.Streams {
					if f := durable[tok]; f == nil || f.completed || f.gone {
						t.Fatalf("gen %d: unknown or dead stream %d recovered", gen, tok)
					}
				}
				pending := map[uint64]int{}
				for i, ops := 0, 8+rng.Intn(12); i < ops; i++ {
					switch candidates := live(); {
					case len(candidates) == 0 || rng.Intn(4) == 0:
						tok := next
						next++
						if _, err := j.Admitted(testStream(tok)); err != nil {
							t.Fatalf("gen %d: admit %d: %v", gen, tok, err)
						}
						durable[tok] = &fact{}
					default:
						tok := candidates[rng.Intn(len(candidates))]
						f := durable[tok]
						switch rng.Intn(4) {
						case 0, 1:
							f.latest += 1 + rng.Intn(6)
							j.Watermark(tok, f.latest, []byte{byte(f.latest)})
							pending[tok] = f.latest
							if rng.Intn(2) == 0 {
								if err := j.Flush(); err != nil {
									t.Fatalf("gen %d: flush: %v", gen, err)
								}
								for ptok, mark := range pending {
									durable[ptok].flushed = mark
								}
								pending = map[uint64]int{}
							}
						case 2:
							tomb := testTomb(tok, f.latest)
							if _, err := j.Completed(tomb); err != nil {
								t.Fatalf("gen %d: complete %d: %v", gen, tok, err)
							}
							f.completed, f.pictures = true, f.latest
							delete(pending, tok)
						case 3:
							if _, err := j.Expired(tok, tok, ExpireFailed); err != nil {
								t.Fatalf("gen %d: expire %d: %v", gen, tok, err)
							}
							f.gone = true
							delete(pending, tok)
						}
					}
				}
				j.Abandon()
				if err := cfs.Crash(rng); err != nil {
					t.Fatalf("gen %d: crash: %v", gen, err)
				}
			}
		})
	}
}

// TestCloseIsIdempotent: double Close and post-Close appends behave.
func TestCloseIsIdempotent(t *testing.T) {
	mem := NewMemFS()
	j := mustOpen(t, mem)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := j.Admitted(testStream(1)); err == nil {
		t.Fatal("append after Close accepted")
	}
	j.Watermark(1, 1, nil) // must not panic
}
