package main

import (
	"os"
	"path/filepath"
	"testing"

	"mpegsmooth"
)

func TestRunSingleSequenceToFile(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "d1.csv")
	if err := run("driving1", 54, 1, out, dir, false); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := mpegsmooth.ReadTraceCSV(f)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Name != "Driving1" || tr.Len() != 54 {
		t.Fatalf("wrote %s with %d pictures", tr.Name, tr.Len())
	}
}

func TestRunAllSequences(t *testing.T) {
	dir := t.TempDir()
	if err := run("all", 27, 1, "", dir, false); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"driving1", "driving2", "tennis", "backyard"} {
		if _, err := os.Stat(filepath.Join(dir, name+".csv")); err != nil {
			t.Errorf("%s.csv missing: %v", name, err)
		}
	}
}

func TestRunUnknownSequence(t *testing.T) {
	if err := run("nope", 10, 1, "", ".", false); err == nil {
		t.Fatal("unknown sequence should fail")
	}
}

func TestRunStats(t *testing.T) {
	// Stats mode prints to stdout; just confirm it does not error.
	if err := run("tennis", 27, 1, "", ".", true); err != nil {
		t.Fatal(err)
	}
}
