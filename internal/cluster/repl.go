// Replication channel: the primary streams its journal's record feed
// to followers over a dedicated TCP listener, framed the same way as
// everything else in this codebase — CRC-checked, length-prefixed,
// corruption detected rather than decoded.
//
// Wire format: the follower opens with the "MSRP" magic and a hello
// frame naming itself; the primary answers with one snapshot frame and
// then a stream of record and heartbeat frames. Every frame is
//
//	type (1) | len (4) | payload | crc32 (4)
//
// where the CRC covers type|len|payload. Every payload begins with the
// primary's 24-byte publish cursor (active segment sequence, cumulative
// records, cumulative bytes), so the follower can report replication
// lag in segments, records, and bytes at any instant:
//
//	'h' hello      follower name (no cursor; follower → primary)
//	's' snapshot   cursor | segment image of the live state
//	'r' record     cursor | one journal record frame
//	'b' heartbeat  cursor only
//
// A follower that falls behind the feed buffer is dropped by the
// journal (its channel closes); it reconnects and resyncs from a fresh
// snapshot. A follower that stops hearing frames for FailoverTimeout
// concludes the primary is dead and tries to promote (see node.go).
package cluster

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"sync/atomic"
	"time"

	"mpegsmooth/internal/journal"
)

var replMagic = []byte("MSRP")

const (
	replHello     byte = 'h'
	replSnapshot  byte = 's'
	replRecord    byte = 'r'
	replHeartbeat byte = 'b'
)

// maxReplPayload bounds a replication payload during reads; the
// snapshot image is the only large one.
const maxReplPayload = 64 << 20

// maxFollowerName bounds the hello payload.
const maxFollowerName = 128

// cursorLen is the encoded size of a publish cursor.
const cursorLen = 24

func appendCursor(buf []byte, o journal.Offsets) []byte {
	buf = binary.BigEndian.AppendUint64(buf, o.SegmentSeq)
	buf = binary.BigEndian.AppendUint64(buf, o.Records)
	return binary.BigEndian.AppendUint64(buf, o.Bytes)
}

func parseCursor(b []byte) (journal.Offsets, []byte, error) {
	if len(b) < cursorLen {
		return journal.Offsets{}, nil, fmt.Errorf("cluster: %d-byte payload shorter than its cursor", len(b))
	}
	return journal.Offsets{
		SegmentSeq: binary.BigEndian.Uint64(b[0:8]),
		Records:    binary.BigEndian.Uint64(b[8:16]),
		Bytes:      binary.BigEndian.Uint64(b[16:24]),
	}, b[cursorLen:], nil
}

func writeReplFrame(w io.Writer, typ byte, payload []byte) error {
	buf := make([]byte, 0, 9+len(payload))
	buf = append(buf, typ)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, payload...)
	buf = binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	_, err := w.Write(buf)
	return err
}

func readReplFrame(r io.Reader) (byte, []byte, error) {
	var head [5]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		return 0, nil, err
	}
	n := int(binary.BigEndian.Uint32(head[1:5]))
	if n > maxReplPayload {
		return 0, nil, fmt.Errorf("cluster: replication frame declares %d-byte payload", n)
	}
	rest := make([]byte, n+4)
	if _, err := io.ReadFull(r, rest); err != nil {
		return 0, nil, err
	}
	sum := crc32.ChecksumIEEE(head[:])
	sum = crc32.Update(sum, crc32.IEEETable, rest[:n])
	if got := binary.BigEndian.Uint32(rest[n:]); got != sum {
		return 0, nil, fmt.Errorf("cluster: replication frame crc %08x, want %08x", got, sum)
	}
	return head[0], rest[:n], nil
}

// publishLoop is the primary's replication acceptor: one goroutine per
// attached follower. It exits when the replication listener closes.
func (n *Node) publishLoop(ln net.Listener, jrnl *journal.Journal) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			n.serveFollower(conn, jrnl)
		}()
	}
}

// serveFollower streams the journal feed to one follower: handshake,
// snapshot, then records and heartbeats until either side dies. A write
// failure or feed overflow drops the follower; it reconnects and
// resyncs from a fresh snapshot.
func (n *Node) serveFollower(conn net.Conn, jrnl *journal.Journal) {
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(n.cfg.FailoverTimeout))
	var magic [4]byte
	if _, err := io.ReadFull(conn, magic[:]); err != nil || string(magic[:]) != string(replMagic) {
		n.logf("cluster: %s: replication handshake from %s without magic", n.id(), conn.RemoteAddr())
		return
	}
	typ, payload, err := readReplFrame(conn)
	if err != nil || typ != replHello || len(payload) == 0 || len(payload) > maxFollowerName {
		n.logf("cluster: %s: bad replication hello from %s: %v", n.id(), conn.RemoteAddr(), err)
		return
	}
	name := string(payload)

	snap, at, frames, cancel, err := jrnl.Follow(n.cfg.FollowBuffer)
	if err != nil {
		return
	}
	defer cancel()
	pl := make([]byte, 0, cursorLen+len(snap))
	pl = appendCursor(pl, at)
	pl = append(pl, snap...)
	conn.SetWriteDeadline(time.Now().Add(n.cfg.FailoverTimeout))
	if err := writeReplFrame(conn, replSnapshot, pl); err != nil {
		return
	}
	atomic.AddInt64(&n.followers, 1)
	defer atomic.AddInt64(&n.followers, -1)
	n.logf("cluster: %s: follower %s attached from %s (snapshot %d bytes at record %d)",
		n.id(), name, conn.RemoteAddr(), len(snap), at.Records)

	tick := time.NewTicker(n.cfg.HeartbeatInterval)
	defer tick.Stop()
	var buf []byte
	for {
		select {
		case frame, ok := <-frames:
			if !ok {
				// The feed dropped this subscriber (it fell behind the
				// buffer) or the journal closed. Either way the follower
				// reconnects and resyncs.
				atomic.AddInt64(&n.followerDrops, 1)
				n.logf("cluster: %s: follower %s dropped from the feed (lagged or journal closed)", n.id(), name)
				return
			}
			buf = appendCursor(buf[:0], jrnl.FollowOffsets())
			buf = append(buf, frame...)
			conn.SetWriteDeadline(time.Now().Add(n.cfg.FailoverTimeout))
			if err := writeReplFrame(conn, replRecord, buf); err != nil {
				atomic.AddInt64(&n.followerDrops, 1)
				return
			}
		case <-tick.C:
			buf = appendCursor(buf[:0], jrnl.FollowOffsets())
			conn.SetWriteDeadline(time.Now().Add(n.cfg.FailoverTimeout))
			if err := writeReplFrame(conn, replHeartbeat, buf); err != nil {
				atomic.AddInt64(&n.followerDrops, 1)
				return
			}
		case <-n.ctx.Done():
			return
		}
	}
}

// followLoop is the follower's life: stay attached to the shard's
// primary, replay its feed into the standby journal, and — when the
// primary goes silent past FailoverTimeout — try to promote. It returns
// when the node is stopped or has become the primary.
func (n *Node) followLoop() {
	defer n.wg.Done()
	n.noteHeard()
	for n.ctx.Err() == nil {
		conn, err := net.DialTimeout("tcp", n.self.ReplAddr, n.cfg.DialTimeout)
		if err == nil {
			n.setReplConn(conn)
			err = n.streamFromPrimary(conn)
			n.setReplConn(nil)
			conn.Close()
			if n.ctx.Err() == nil {
				n.logf("cluster: %s: replication stream ended: %v", n.id(), err)
			}
		}
		if n.ctx.Err() != nil {
			return
		}
		if time.Since(n.lastHeard()) >= n.cfg.FailoverTimeout {
			if n.tryPromote() {
				return
			}
		}
		n.sleep(n.cfg.DialTimeout / 4)
	}
}

// streamFromPrimary drives one attached replication connection: apply
// snapshots and records into the standby journal, track the primary's
// cursor, and refresh the liveness clock on every frame.
func (n *Node) streamFromPrimary(conn net.Conn) error {
	conn.SetWriteDeadline(time.Now().Add(n.cfg.FailoverTimeout))
	if _, err := conn.Write(replMagic); err != nil {
		return err
	}
	if err := writeReplFrame(conn, replHello, []byte(n.id())); err != nil {
		return err
	}
	n.setConnected(true)
	defer n.setConnected(false)
	br := bufio.NewReaderSize(conn, 64<<10)
	for {
		conn.SetReadDeadline(time.Now().Add(n.cfg.FailoverTimeout))
		typ, payload, err := readReplFrame(br)
		if err != nil {
			return err
		}
		n.noteHeard()
		cursor, rest, err := parseCursor(payload)
		if err != nil {
			return err
		}
		switch typ {
		case replSnapshot:
			recs, valid, scanErr := journal.ScanSegment(rest)
			if scanErr != nil || valid != len(rest) {
				return fmt.Errorf("cluster: torn replication snapshot (%d of %d bytes valid): %v",
					valid, len(rest), scanErr)
			}
			if err := n.standby().ResetTo(recs); err != nil {
				return fmt.Errorf("cluster: resync into standby journal: %w", err)
			}
			n.repl.resync(cursor)
			n.logf("cluster: %s: resynced from snapshot (%d records, primary at record %d)",
				n.id(), len(recs), cursor.Records)
		case replRecord:
			rec, size, perr := journal.ParseFrame(rest)
			if perr != nil || size != len(rest) {
				return fmt.Errorf("cluster: torn replicated record (%d of %d bytes): %v",
					size, len(rest), perr)
			}
			if err := n.standby().AppendRecord(rec); err != nil {
				return fmt.Errorf("cluster: applying replicated record: %w", err)
			}
			n.repl.recordApplied(cursor, rec.Kind, size)
		case replHeartbeat:
			n.repl.heartbeat(cursor)
		default:
			return fmt.Errorf("cluster: unknown replication frame type %#02x", typ)
		}
	}
}
