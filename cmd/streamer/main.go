// Command streamer sends or receives a smoothed video stream over TCP:
// the deployable form of the whole pipeline. The sender smooths a trace
// (standing in for live encoder output — the incremental LiveSmoother
// computes the identical schedule), paces each picture at its scheduled
// rate, and declares every rate change with a notify(i, rate) message;
// the receiver verifies integrity and reports observed timing.
//
// Usage:
//
//	streamer recv -listen 127.0.0.1:8402
//	streamer send -connect 127.0.0.1:8402 -seq driving1 -D 0.2 -timescale 10
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"os"
	"strings"
	"time"

	"mpegsmooth"
	"mpegsmooth/internal/faultnet"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "send":
		err = send(os.Args[2:])
	case "recv":
		err = recv(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "streamer: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: streamer send|recv [flags]")
	os.Exit(2)
}

func send(args []string) error {
	fs := flag.NewFlagSet("send", flag.ExitOnError)
	var (
		connect   = fs.String("connect", "127.0.0.1:8402", "receiver address")
		seq       = fs.String("seq", "driving1", "sequence: driving1, driving2, tennis, backyard")
		pictures  = fs.Int("pictures", 270, "trace length")
		seed      = fs.Int64("seed", 1, "trace seed")
		k         = fs.Int("K", 1, "known pictures before sending")
		d         = fs.Float64("D", 0.2, "delay bound (seconds)")
		policy    = fs.String("policy", "basic", "rate policy: basic, moving-average, capped:<bps>, min-var")
		timescale = fs.Float64("timescale", 1, "replay speed multiplier (1 = real time)")
		handshake = fs.Bool("handshake", false, "declare the stream to a smoothd server and await admission before sending")
		retries   = fs.Int("retries", 8, "max consecutive reconnect attempts before abandoning the stream (handshake mode)")
		writeTO   = fs.Duration("write-timeout", 30*time.Second, "per-message write deadline (0 = none)")
		integrity = fs.String("integrity", "fnv", "prefix-integrity mode for the handshake: fnv or hmac-sha256:<keyfile> (must match the server's)")
		datagram  = fs.Bool("datagram", false, "dial UDP and run the stream over the selective-repeat ARQ datagram transport")
		reorder   = fs.Float64("reorder", 0, "datagram chaos: probability a sent packet is held and re-emitted late")
		burstLoss = fs.Float64("burst-loss", 0, "datagram chaos: Gilbert-Elliott burst entry probability per packet (bursts drop ~90% of packets)")
		fading    = fs.Duration("fading", 0, "datagram chaos: block-fading coherence time, 10% of blocks in outage (0 = disabled)")
	)
	fs.Parse(args)
	nw, err := chaosInjector(*datagram, *reorder, *burstLoss, *fading, *seed)
	if err != nil {
		return err
	}
	dialStream := func(ctx context.Context, addr string) (net.Conn, error) {
		if !*datagram {
			var d net.Dialer
			return d.DialContext(ctx, "tcp", addr)
		}
		raddr, err := net.ResolveUDPAddr("udp", addr)
		if err != nil {
			return nil, err
		}
		udp, err := net.DialUDP("udp", nil, raddr)
		if err != nil {
			return nil, err
		}
		var pc net.Conn = udp
		if nw != nil {
			pc = nw.WrapConn(pc)
		}
		return mpegsmooth.NewDatagramClientConn(pc, mpegsmooth.DatagramConfig{}), nil
	}
	mode, key, err := mpegsmooth.ParseIntegrity(*integrity)
	if err != nil {
		return err
	}

	gens := map[string]func(int, int64) (*mpegsmooth.Trace, error){
		"driving1": mpegsmooth.Driving1,
		"driving2": mpegsmooth.Driving2,
		"tennis":   mpegsmooth.Tennis,
		"backyard": mpegsmooth.Backyard,
	}
	gen, ok := gens[strings.ToLower(*seq)]
	if !ok {
		return fmt.Errorf("unknown sequence %q", *seq)
	}
	tr, err := gen(*pictures, *seed)
	if err != nil {
		return err
	}
	pol, err := mpegsmooth.ParsePolicy(*policy)
	if err != nil {
		return err
	}
	sched, err := mpegsmooth.Smooth(tr, mpegsmooth.Config{K: *k, H: tr.GOP.N, D: *d, Policy: pol})
	if err != nil {
		return err
	}
	if err := mpegsmooth.Verify(sched); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(*seed))
	payloads := make([][]byte, tr.Len())
	for i, bits := range tr.Sizes {
		payloads[i] = make([]byte, (bits+7)/8)
		rng.Read(payloads[i])
	}

	fmt.Printf("sending %s: %d pictures over %.1f s of schedule at %gx speed to %s\n",
		tr.Name, tr.Len(), sched.Depart[tr.Len()-1], *timescale, *connect)
	start := time.Now()
	if *handshake {
		// Admission handshake plus reconnect-and-resume: a transient
		// fault (corruption, reset, timeout) redials with backoff and
		// replays from the server's NextIndex instead of failing.
		rs := &mpegsmooth.ResumableSender{
			Sender: mpegsmooth.Sender{TimeScale: *timescale, WriteTimeout: *writeTO},
			Dial: func(ctx context.Context) (net.Conn, error) {
				return dialStream(ctx, *connect)
			},
			// A sharded fleet answers a misdirected handshake with a
			// redirect verdict; follow it to the owning shard.
			DialAddr: dialStream,
			Hello: mpegsmooth.StreamHello{
				Tau: tr.Tau, GOP: tr.GOP, K: *k, D: *d,
				Pictures: tr.Len(), PeakRate: sched.PeakRate(),
			},
			MaxAttempts: *retries,
			Integrity:   mode,
			Key:         key,
			OnEvent: func(ev mpegsmooth.ResumeEvent) {
				switch {
				case ev.AlreadyComplete:
					fmt.Fprintf(os.Stderr,
						"warning: completion ack was lost; server confirmed all %d pictures already accepted\n",
						ev.NextIndex)
				case ev.Resumed:
					fmt.Printf("resumed at picture %d\n", ev.NextIndex)
				default:
					fmt.Printf("stream fault (%s, attempt %d): %v\n", ev.Class, ev.Attempt, ev.Err)
				}
			},
		}
		res, err := rs.StreamSchedule(context.Background(), sched, payloads)
		if err != nil {
			return err
		}
		fmt.Printf("admitted at peak %.0f bps (%.0f bps still available)\n",
			sched.PeakRate(), res.Verdict.Available)
		if res.Resumes > 0 {
			fmt.Printf("survived %d disconnect(s)\n", res.Resumes)
		}
		if res.AlreadyComplete {
			fmt.Println("delivery confirmed via already-complete verdict (lost-ack recovery)")
		}
	} else {
		conn, err := dialStream(context.Background(), *connect)
		if err != nil {
			return err
		}
		defer conn.Close()
		sender := &mpegsmooth.Sender{TimeScale: *timescale, WriteTimeout: *writeTO}
		if err := sender.Send(context.Background(), mpegsmooth.NewFrameWriter(conn), sched, payloads); err != nil {
			return err
		}
	}
	if nw != nil {
		c := nw.Counts()
		fmt.Printf("chaos injected: %d dropped, %d burst-dropped, %d fade-dropped, %d duplicated, %d reordered\n",
			c.Dropped, c.BurstDropped, c.FadeDropped, c.Duplicated, c.Reordered)
	}
	fmt.Printf("done in %v\n", time.Since(start).Round(time.Millisecond))
	return nil
}

// chaosInjector builds the packet fault injector the datagram chaos
// flags describe, or nil when none are set.
func chaosInjector(datagram bool, reorder, burstLoss float64, fading time.Duration,
	seed int64) (*faultnet.PacketNet, error) {
	if reorder == 0 && burstLoss == 0 && fading == 0 {
		return nil, nil
	}
	if !datagram {
		return nil, fmt.Errorf("-reorder, -burst-loss, and -fading require -datagram")
	}
	return faultnet.NewPacketNet(faultnet.PacketConfig{
		Seed:        seed,
		ReorderProb: reorder,
		Burst:       faultnet.PacketBurst{EnterProb: burstLoss},
		Fading:      faultnet.FadingConfig{Coherence: fading, OutageProb: 0.1},
	}), nil
}

func recv(args []string) error {
	fs := flag.NewFlagSet("recv", flag.ExitOnError)
	listen := fs.String("listen", "127.0.0.1:8402", "listen address")
	once := fs.Bool("once", true, "exit after one session")
	readTO := fs.Duration("read-timeout", 30*time.Second, "per-message read deadline (0 = none)")
	datagram := fs.Bool("datagram", false, "listen on UDP and accept ARQ datagram flows")
	fs.Parse(args)

	var ln net.Listener
	if *datagram {
		pc, err := net.ListenPacket("udp", *listen)
		if err != nil {
			return err
		}
		ln = mpegsmooth.ListenDatagram(pc, mpegsmooth.DatagramConfig{})
	} else {
		var err error
		ln, err = net.Listen("tcp", *listen)
		if err != nil {
			return err
		}
	}
	defer ln.Close()
	fmt.Printf("listening on %s\n", ln.Addr())
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		if err := serveOne(conn, *readTO); err != nil {
			fmt.Fprintf(os.Stderr, "session: %v\n", err)
		}
		if *once {
			return nil
		}
	}
}

func serveOne(conn net.Conn, readTimeout time.Duration) error {
	defer conn.Close()
	fmt.Printf("session from %s\n", conn.RemoteAddr())
	rc := &mpegsmooth.Receiver{ReadTimeout: readTimeout}
	report, err := rc.Receive(context.Background(), conn)
	if err != nil {
		return err
	}
	fmt.Printf("received %d pictures, %d bytes, %d rate notifications, in %v\n",
		len(report.Pictures), report.TotalBytes(), len(report.Notifications),
		report.Elapsed.Round(time.Millisecond))
	if len(report.Pictures) > 0 {
		var iN, pN, bN int
		for _, p := range report.Pictures {
			switch p.Type {
			case mpegsmooth.TypeI:
				iN++
			case mpegsmooth.TypeP:
				pN++
			default:
				bN++
			}
		}
		fmt.Printf("picture types: %d I, %d P, %d B\n", iN, pN, bN)
		mean := float64(report.TotalBytes()) * 8 / report.Elapsed.Seconds()
		fmt.Printf("mean received rate %.3f Mbps\n", mean/1e6)
	}
	return nil
}
