package core

import (
	"math"

	"mpegsmooth/internal/mpeg"
)

// engine is the decision kernel shared by the offline Smooth and the
// incremental LiveSmoother: one call of decide corresponds to one pass
// of the outer loop in the paper's Figure 2 specification.
type engine struct {
	cfg   Config
	tau   float64
	gop   mpeg.GOP
	types []mpeg.PictureType // explicit types for adaptive-pattern traces
}

// decision is the outcome of scheduling one picture.
type decision struct {
	// Picture is the 0-based display index.
	Picture int
	// Rate is the selected r_i in bits/second.
	Rate float64
	// Start and Depart are t_i and d_i; Delay is Eq. (4).
	Start, Depart, Delay float64
	// Lower and Upper are the Theorem 1 (h = 0, actual size) bounds
	// recorded for verification.
	Lower, Upper float64
}

// decide schedules picture j.
//
//	sizes    the prefix of picture sizes the system has learned so far;
//	         must include picture j and every picture visible at t_j
//	depart   d_{j-1} (0 for the first picture)
//	held     the rate selected for picture j−1 (the basic variant holds it)
//	end      total sequence length if known, else -1 (live operation):
//	         bounds the lookahead at the end of a finite sequence
func (e *engine) decide(j int, sizes []int64, depart, held float64, end int) decision {
	cfg := e.cfg
	tau := e.tau
	// Eq. (2): the server may begin sending picture j once the previous
	// picture has departed and pictures j .. j+K−1 have arrived (the
	// K-th arrives by (j+K)τ in 0-based indexing).
	now := math.Max(depart, float64(j+cfg.K)*tau)
	view := View{tau: tau, gop: e.gop, types: e.types, sizes: sizes, now: now}
	size := func(jj int) float64 {
		if actual, ok := view.Size(jj); ok {
			return float64(actual)
		}
		return float64(cfg.Estimator.Estimate(jj, view))
	}

	// Inner lookahead loop: accumulate the running max of lower bounds
	// (12) and min of upper bounds (13) for h = 0 .. H−1.
	var (
		sum      float64
		lower    = 0.0
		upper    = math.Inf(1)
		lowerOld = 0.0
	)
	h := 0
	for {
		if end >= 0 && j+h >= end {
			break // finite sequence: nothing to look ahead at
		}
		sum += size(j + h)
		lowerOld = lower
		l := math.Inf(1)
		if den := cfg.D + float64(j+h)*tau - now; den > 0 {
			l = sum / den
		}
		u := math.Inf(1)
		if ub := float64(cfg.K+j+1+h) * tau; now < ub {
			u = sum / (ub - now)
		}
		lower = math.Max(l, lower)
		upper = math.Min(u, upper)
		h++
		if lower > upper || h >= cfg.H {
			break
		}
	}

	rate := held
	if lower > upper {
		// Early exit: the accumulated bounds crossed at lookahead h−1.
		// Exactly one of the bounds moved in the crossing iteration;
		// select the rate that defers the next forced change.
		if lower > lowerOld {
			rate = upper // upper == upperOld
		} else {
			rate = lower // lower == lowerOld, upper < upperOld
		}
	} else {
		// Normal exit: the whole lookahead window admits one rate.
		switch {
		case j == 0:
			rate = (lower + upper) / 2
		case cfg.Variant == MovingAverage:
			// Eq. (15): track the pattern moving average.
			rate = sum / (float64(e.gop.N) * tau)
		}
		// Hold the previous rate (or the proposal above) unless it falls
		// outside the accumulated bounds.
		if rate > upper {
			rate = upper
		} else if rate < lower {
			rate = lower
		}
	}
	if math.IsInf(rate, 1) || rate <= 0 {
		// Only reachable in K = 0 runs whose delay bound is already
		// unsatisfiable (the lower-bound denominator went negative).
		// Fall back to draining the picture within one period.
		rate = math.Max(float64(sizes[j])/tau, 1)
	}

	// Eqs. (3)–(4) with the picture's ACTUAL size: the transmitter
	// always sends real bits, whatever the estimator believed.
	actual := float64(sizes[j])
	d := decision{
		Picture: j,
		Rate:    rate,
		Start:   now,
		Depart:  now + actual/rate,
	}
	d.Delay = d.Depart - float64(j)*tau

	// Theorem 1 (h = 0, actual size) bounds for verification.
	d.Lower = math.Inf(1)
	if den := cfg.D + float64(j)*tau - now; den > 0 {
		d.Lower = actual / den
	}
	d.Upper = math.Inf(1)
	if ub := float64(cfg.K+j+1) * tau; now < ub {
		d.Upper = actual / (ub - now)
	}
	return d
}
