package journal

import (
	"reflect"
	"testing"
)

// FuzzJournalReplay throws arbitrary bytes at the segment scanner and
// checks the recovery invariants that every crash shape depends on:
// the scan never panics, never reads past the data, reports a valid
// offset that is a fixed point under truncation (rescanning the kept
// prefix is clean and yields identical records), and the records it
// does surface apply idempotently.
func FuzzJournalReplay(f *testing.F) {
	clean := buildSegment(
		encodeAdmit(testStream(1)),
		encodeWatermark(1, 3, []byte{1, 2}),
		encodeComplete(testTomb(2, 60)),
		encodeExpire(2, 2, ExpireTombstone),
	)
	f.Add(clean)
	f.Add(clean[:len(clean)-3]) // torn tail
	f.Add(clean[:len(segMagic)])
	f.Add([]byte{})
	f.Add([]byte("JUNKJUNK"))
	corrupt := append([]byte(nil), clean...)
	corrupt[len(segMagic)+7] ^= 0x40
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, valid, err := ScanSegment(data)
		if valid < 0 || valid > len(data) {
			t.Fatalf("valid offset %d out of [0, %d]", valid, len(data))
		}
		if err == nil && valid != len(data) {
			t.Fatalf("clean scan stopped early: %d of %d", valid, len(data))
		}
		if err == nil || valid >= len(segMagic) {
			recs2, valid2, err2 := ScanSegment(data[:valid])
			if err2 != nil || valid2 != valid || !reflect.DeepEqual(recs, recs2) {
				t.Fatalf("truncation to %d not a fixed point: err %v", valid, err2)
			}
		}
		// Applying whatever was recovered is total and idempotent:
		// replaying the same records twice changes nothing.
		once, twice := newState(), newState()
		for _, r := range recs {
			once.apply(r)
		}
		for i := 0; i < 2; i++ {
			for _, r := range recs {
				twice.apply(r)
			}
		}
		if !reflect.DeepEqual(once, twice) {
			t.Fatal("replay is not idempotent")
		}
	})
}
