package server

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"mpegsmooth/internal/faultnet"
)

// protocolSeeds are the fixed seeds the exactly-once harness replays
// each scenario under. The seed feeds the client's backoff jitter and
// both fault networks, so every run is a distinct but reproducible
// interleaving. The full suite runs all eight (CI's protocol job);
// -short keeps the first two.
func protocolSeeds(t *testing.T) []int64 {
	t.Helper()
	seeds := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	if testing.Short() {
		return seeds[:2]
	}
	return seeds
}

// protoScenario drops or corrupts exactly one handshake message class
// via targeted OpFaults: client-side writes (hello, resume) through a
// faultnet.Dialer, server-side writes (admission verdict, resume
// verdict, completion ack) through a faultnet.Listener. Connection and
// op indices are deterministic: one client dials sequentially, so
// client conn 1 is the original connection and conn 2 its first redial;
// server conn N is the N-th accept. Write op 1 of a client conn is its
// hello or resume; write op 1 of a server conn is its verdict, and the
// completion ack is write op 2 of the conn that streamed to the end.
type protoScenario struct {
	name      string
	clientOps []faultnet.OpFault
	serverOps []faultnet.OpFault
	// minResumes is the least number of accepted token resumes the
	// client must report.
	minResumes int
	// wantDeduped requires the server to have recognized a hello
	// retransmission by nonce (lost-verdict recovery).
	wantDeduped bool
	// wantAlreadyComplete requires the lost-completion-ack path: the
	// client's success confirmed by a tombstone verdict.
	wantAlreadyComplete bool
}

// midStreamReset forces a resume by resetting the client's first
// connection at its 6th write — safely past the hello (write op 1) and
// well before an 18-picture stream ends.
var midStreamReset = faultnet.OpFault{Conn: 1, Op: 6, Write: true, Action: faultnet.ActReset}

var protoScenarios = []protoScenario{
	// The client's hello vanishes or arrives corrupted: the retry must
	// converge on exactly one admission.
	{name: "drop-hello",
		clientOps: []faultnet.OpFault{{Conn: 1, Op: 1, Write: true, Action: faultnet.ActDrop}}},
	{name: "corrupt-hello",
		clientOps: []faultnet.OpFault{{Conn: 1, Op: 1, Write: true, Action: faultnet.ActCorrupt}}},

	// The admission verdict vanishes or arrives corrupted: the server
	// has reserved, the client doesn't know. The redialed hello must be
	// deduplicated by nonce onto the existing reservation.
	{name: "drop-verdict", wantDeduped: true,
		serverOps: []faultnet.OpFault{{Conn: 1, Op: 1, Write: true, Action: faultnet.ActDrop}}},
	{name: "corrupt-verdict", wantDeduped: true,
		serverOps: []faultnet.OpFault{{Conn: 1, Op: 1, Write: true, Action: faultnet.ActCorrupt}}},

	// A mid-stream reset forces a resume, whose request or verdict is
	// then lost or corrupted; the retry must reattach without replaying
	// divergent bytes.
	{name: "drop-resume", minResumes: 1,
		clientOps: []faultnet.OpFault{midStreamReset, {Conn: 2, Op: 1, Write: true, Action: faultnet.ActDrop}}},
	{name: "corrupt-resume", minResumes: 1,
		clientOps: []faultnet.OpFault{midStreamReset, {Conn: 2, Op: 1, Write: true, Action: faultnet.ActCorrupt}}},
	{name: "drop-resume-verdict", minResumes: 1,
		clientOps: []faultnet.OpFault{midStreamReset},
		serverOps: []faultnet.OpFault{{Conn: 2, Op: 1, Write: true, Action: faultnet.ActDrop}}},
	{name: "corrupt-resume-verdict", minResumes: 1,
		clientOps: []faultnet.OpFault{midStreamReset},
		serverOps: []faultnet.OpFault{{Conn: 2, Op: 1, Write: true, Action: faultnet.ActCorrupt}}},

	// The completion ack vanishes or arrives corrupted: the server
	// finished and tombstoned the stream; the client's resume must get
	// a verifiable AlreadyComplete verdict, not a rejection and not a
	// second session.
	{name: "drop-ack", wantAlreadyComplete: true,
		serverOps: []faultnet.OpFault{{Conn: 1, Op: 2, Write: true, Action: faultnet.ActDrop}}},
	{name: "corrupt-ack", wantAlreadyComplete: true,
		serverOps: []faultnet.OpFault{{Conn: 1, Op: 2, Write: true, Action: faultnet.ActCorrupt}}},

	// Compound schedules: several faults land on ONE stream's lifetime,
	// each hitting the recovery path opened by the previous fault. These
	// are the interleavings single-fault scenarios can't reach.

	// Reset mid-stream, drop the resume verdict the redial earns, then
	// drop the completion ack of the connection that finally streams to
	// the end — recovery of a recovery of a recovery, ending in a
	// tombstone answer.
	{name: "drop-resume-verdict-and-ack", minResumes: 1, wantAlreadyComplete: true,
		clientOps: []faultnet.OpFault{midStreamReset},
		serverOps: []faultnet.OpFault{
			{Conn: 2, Op: 1, Write: true, Action: faultnet.ActDrop},
			{Conn: 3, Op: 2, Write: true, Action: faultnet.ActDrop},
		}},
	// The hello is corrupted, and when the retried hello is admitted its
	// verdict is dropped: the third dial's hello must dedup by nonce onto
	// the reservation the client never heard about.
	{name: "corrupt-hello-then-drop-verdict", wantDeduped: true,
		clientOps: []faultnet.OpFault{{Conn: 1, Op: 1, Write: true, Action: faultnet.ActCorrupt}},
		serverOps: []faultnet.OpFault{{Conn: 2, Op: 1, Write: true, Action: faultnet.ActDrop}}},
	// Two mid-stream resets: the replay connection is itself reset, so
	// the second resume must pick up from the watermark the first resume
	// advanced to — watermarks only ever move forward.
	{name: "double-mid-stream-reset", minResumes: 2,
		clientOps: []faultnet.OpFault{
			midStreamReset,
			{Conn: 2, Op: 8, Write: true, Action: faultnet.ActReset},
		}},
}

// TestProtocolExactlyOnce is the deterministic protocol property
// harness: for every handshake message class (hello, admission verdict,
// resume request, resume verdict, completion ack) and both failure
// modes (dropped, corrupted), across fixed seeds, the session protocol
// must stay exactly-once — the stream completes, the server admits
// exactly one session (no double reservation), the accepted bytes match
// the sender's (no divergence), and the client never sees a terminal
// rejection (no spurious failure).
func TestProtocolExactlyOnce(t *testing.T) {
	for _, sc := range protoScenarios {
		for _, seed := range protocolSeeds(t) {
			t.Run(fmt.Sprintf("%s/seed%d", sc.name, seed), func(t *testing.T) {
				t.Parallel()
				runProtocolScenario(t, sc, seed)
			})
		}
	}
}

// TestProtocolRandomizedCompound generates seeded random compound fault
// schedules — 2–4 faults per run, spread across connections, ops, both
// sides, and all three actions — and holds every run to the same
// exactly-once bar as the hand-written scenarios. The generator is the
// search the curated table can't do: it reaches fault interleavings
// nobody thought to name, and a failing seed replays deterministically.
//
// One constraint keeps the runs inside the protocol's contract: whole
// frames are only DROPPED at a connection's first write (hello or
// resume, where loss models a lost datagram and the peer times out).
// Dropping one frame mid-stream would desynchronize the picture framing
// itself — a gap the protocol defines as a violation, not a fault.
// Corruption and resets stay legal everywhere.
func TestProtocolRandomizedCompound(t *testing.T) {
	actions := []faultnet.FaultAction{faultnet.ActDrop, faultnet.ActCorrupt, faultnet.ActReset}
	for _, seed := range protocolSeeds(t) {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(seed * 7919))
			pick := func(op int) faultnet.FaultAction {
				a := actions[rng.Intn(len(actions))]
				if op > 1 && a == faultnet.ActDrop {
					a = faultnet.ActCorrupt
				}
				return a
			}
			sc := protoScenario{name: fmt.Sprintf("random-seed%d", seed)}
			// The first fault always lands on the original connection's
			// early writes (hello is op 1; an 18-picture stream makes
			// dozens more), so every run injects at least one fault.
			op := 1 + rng.Intn(6)
			sc.clientOps = append(sc.clientOps,
				faultnet.OpFault{Conn: 1, Op: op, Write: true, Action: pick(op)})
			for n := 1 + rng.Intn(3); n > 0; n-- {
				if rng.Intn(2) == 0 {
					op := 1 + rng.Intn(10)
					sc.clientOps = append(sc.clientOps,
						faultnet.OpFault{Conn: 1 + rng.Intn(3), Op: op, Write: true, Action: pick(op)})
				} else {
					// A server conn writes at most twice: verdict, then ack.
					sc.serverOps = append(sc.serverOps,
						faultnet.OpFault{Conn: 1 + rng.Intn(3), Op: 1 + rng.Intn(2), Write: true,
							Action: actions[rng.Intn(len(actions))]})
				}
			}
			runProtocolScenario(t, sc, seed)
		})
	}
}

func runProtocolScenario(t *testing.T, sc protoScenario, seed int64) {
	kit := makeClient(t, testTrace(t, 18))
	wantFNV := payloadFNV(kit.payloads)

	serverNet := faultnet.New(faultnet.Config{Seed: seed, Ops: sc.serverOps})
	clientNet := faultnet.New(faultnet.Config{Seed: seed + 1000, Ops: sc.clientOps})
	srv, addr := startChaosServer(t, Config{
		LinkRate:     2 * kit.hello.PeakRate,
		ReadTimeout:  time.Second,
		ResumeWindow: 10 * time.Second,
	}, serverNet)

	rs := resumableClient(kit, addr, seed)
	rs.HandshakeTimeout = 400 * time.Millisecond
	rs.Dial = clientNet.Dialer(rs.Dial)

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res, err := rs.StreamSchedule(ctx, kit.sched, kit.payloads)
	if err != nil {
		t.Fatalf("client failed (spurious rejection or unrecovered fault): %v", err)
	}
	waitFor(t, "stream drained", func() bool {
		s := srv.Snapshot()
		return s.Streams.Completed == 1 && s.Streams.Active == 0
	})

	snap := srv.Snapshot()
	// Exactly one reservation ever, fully released.
	if snap.Streams.Admitted != 1 {
		t.Errorf("admitted %d sessions, want exactly 1 (double reservation)", snap.Streams.Admitted)
	}
	if snap.Streams.Failed != 0 {
		t.Errorf("%d server-side stream failures", snap.Streams.Failed)
	}
	if snap.ReservedPeak != 0 {
		t.Errorf("%.0f bps still reserved after completion", snap.ReservedPeak)
	}
	// No byte divergence: the one finished stream accepted every
	// picture with the sender's exact bytes.
	fin := srv.FinishedStreams()
	if len(fin) != 1 {
		t.Fatalf("%d finished streams, want 1", len(fin))
	}
	if fin[0].Pictures != kit.tr.Len() {
		t.Errorf("server accepted %d pictures, want %d", fin[0].Pictures, kit.tr.Len())
	}
	if fin[0].PayloadFNV != wantFNV {
		t.Errorf("server payload fnv %016x, want %016x — bytes diverged", fin[0].PayloadFNV, wantFNV)
	}
	// Scenario-specific recovery evidence.
	if res.Resumes < sc.minResumes {
		t.Errorf("client resumed %d times, want at least %d", res.Resumes, sc.minResumes)
	}
	if sc.wantDeduped && snap.Streams.HelloDeduped < 1 {
		t.Errorf("lost verdict not recovered by nonce dedup: hello_deduped = %d", snap.Streams.HelloDeduped)
	}
	if sc.wantAlreadyComplete {
		if !res.AlreadyComplete {
			t.Errorf("client did not report already-complete recovery: %+v", res)
		}
		if snap.Streams.AlreadyComplete < 1 {
			t.Errorf("server answered no resume from a tombstone: already_complete = %d", snap.Streams.AlreadyComplete)
		}
	}
	// The targeted fault actually fired; otherwise the run proved
	// nothing.
	sf, cf := serverNet.Counts(), clientNet.Counts()
	if sf.Dropped+sf.Corrupted+sf.Resets+cf.Dropped+cf.Corrupted+cf.Resets == 0 {
		t.Error("no fault injected; scenario exercised nothing")
	}
}
