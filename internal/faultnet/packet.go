package faultnet

import (
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Packet-level fault injection: the datagram counterpart of the
// byte-stream faultConn. Where the stream injector corrupts and stalls
// a reliable pipe, the packet injector does what real packet networks
// do — drops datagrams (i.i.d., in Gilbert–Elliott bursts, and in
// block-fading outages), duplicates them, and displaces them by a
// bounded distance. Faults apply on the egress path of whichever side
// is wrapped, so wrapping the client conn and the server socket faults
// the two directions independently, each from its own seeded stream.

// PacketConfig sets the packet fault mix. All probabilities are per
// transmitted datagram.
type PacketConfig struct {
	// Seed drives all randomness; each wrapped endpoint derives its own
	// stream from it, so a chaos soak replays the same packet fates per
	// endpoint regardless of scheduling.
	Seed int64
	// LossProb drops a datagram outright (i.i.d. baseline loss).
	LossProb float64
	// DupProb transmits a datagram twice back-to-back.
	DupProb float64
	// ReorderProb holds a datagram aside and re-emits it after
	// ReorderSpan later datagrams have passed it (bounded displacement);
	// ReorderFlush bounds how long a held datagram waits for later
	// traffic before being emitted anyway (defaults: span 3, flush 20ms).
	ReorderProb  float64
	ReorderSpan  int
	ReorderFlush time.Duration
	// Burst layers Gilbert–Elliott two-state burst loss over the
	// baseline: while bad, datagrams additionally drop with
	// Burst.LossProb.
	Burst PacketBurst
	// Fading layers a block-fading channel over everything: time is cut
	// into coherence blocks, each block is independently in outage with
	// OutageProb, and the block's state selects the per-packet loss
	// rate. All endpoints of one PacketNet share the same fading
	// process — a fade hits the channel, not one flow.
	Fading FadingConfig
}

// PacketBurst is the Gilbert–Elliott burst-loss model for datagrams.
type PacketBurst struct {
	// EnterProb is the per-packet good→bad transition probability; zero
	// disables the model (and consumes no random draws).
	EnterProb float64
	// ExitProb is the per-packet bad→good probability (default 0.2:
	// mean burst of 5 packets).
	ExitProb float64
	// LossProb is the per-packet drop probability while bad (default
	// 0.9 — bursts are near-outages, not mild degradation).
	LossProb float64
}

func (b PacketBurst) enabled() bool { return b.EnterProb > 0 }

// FadingConfig is the block-fading channel model: the channel holds
// one state per coherence interval, redrawn independently each block —
// the classic block-fading abstraction, where a slow fade takes the
// whole link into outage for a coherence time rather than speckling
// i.i.d. loss.
type FadingConfig struct {
	// Coherence is the fading block length; zero disables the model
	// (and consumes no random draws).
	Coherence time.Duration
	// OutageProb is the probability any given block is an outage block.
	OutageProb float64
	// GoodLoss and OutageLoss are the per-packet loss rates in the two
	// states (defaults 0 and 1).
	GoodLoss   float64
	OutageLoss float64
}

func (f FadingConfig) enabled() bool { return f.Coherence > 0 }

// FadingOutage reports deterministically whether coherence block
// `block` of the fading process with the given seed is an outage
// block, via a splitmix64-style hash — random access to the block
// state sequence without a sequential RNG, so a simulator and a live
// injector sharing a seed see the same fades.
func FadingOutage(seed, block int64, outageProb float64) bool {
	x := uint64(seed)*0x9E3779B97F4A7C15 + uint64(block+1)*0xBF58476D1CE4E5B9
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return float64(x>>11)/(1<<53) < outageProb
}

// PacketCounts reports the packet faults a PacketNet has injected.
type PacketCounts struct {
	// Packets counts datagrams offered to the injector.
	Packets int64
	// Dropped counts baseline i.i.d. drops; BurstDropped drops owed to
	// the Gilbert–Elliott bad state; FadeDropped drops owed to the
	// fading process.
	Dropped      int64
	BurstDropped int64
	FadeDropped  int64
	// Duplicated counts datagrams sent twice; Reordered datagrams held
	// for late delivery.
	Duplicated int64
	Reordered  int64
}

// Total returns all drops plus duplications and reorderings — a quick
// "did the injector actually do anything" check for soaks.
func (c PacketCounts) Total() int64 {
	return c.Dropped + c.BurstDropped + c.FadeDropped + c.Duplicated + c.Reordered
}

// PacketNet is the packet-level fault-injecting wrapper factory.
type PacketNet struct {
	cfg   PacketConfig
	start time.Time // fading epoch, shared by every endpoint

	endpointIndex atomic.Int64
	packets       atomic.Int64
	dropped       atomic.Int64
	burstDropped  atomic.Int64
	fadeDropped   atomic.Int64
	duplicated    atomic.Int64
	reordered     atomic.Int64
}

// NewPacketNet builds a packet fault injector.
func NewPacketNet(cfg PacketConfig) *PacketNet {
	if cfg.ReorderSpan <= 0 {
		cfg.ReorderSpan = 3
	}
	if cfg.ReorderFlush <= 0 {
		cfg.ReorderFlush = 20 * time.Millisecond
	}
	if cfg.Burst.enabled() {
		if cfg.Burst.ExitProb <= 0 {
			cfg.Burst.ExitProb = 0.2
		}
		if cfg.Burst.LossProb <= 0 {
			cfg.Burst.LossProb = 0.9
		}
	}
	if cfg.Fading.enabled() && cfg.Fading.OutageLoss <= 0 {
		cfg.Fading.OutageLoss = 1
	}
	return &PacketNet{cfg: cfg, start: time.Now()}
}

// Counts snapshots the injected-fault counters.
func (n *PacketNet) Counts() PacketCounts {
	return PacketCounts{
		Packets:      n.packets.Load(),
		Dropped:      n.dropped.Load(),
		BurstDropped: n.burstDropped.Load(),
		FadeDropped:  n.fadeDropped.Load(),
		Duplicated:   n.duplicated.Load(),
		Reordered:    n.reordered.Load(),
	}
}

// newState derives one endpoint's seeded decision state.
func (n *PacketNet) newState() *pktState {
	index := n.endpointIndex.Add(1)
	return &pktState{
		net: n,
		rng: rand.New(rand.NewSource(n.cfg.Seed + index)),
	}
}

// WrapConn wraps a connected packet conn (client side: one datagram
// per Write) with egress fault injection.
func (n *PacketNet) WrapConn(conn net.Conn) net.Conn {
	return &pktConn{Conn: conn, st: n.newState()}
}

// WrapPacketConn wraps a server-side packet socket with egress fault
// injection across all destinations.
func (n *PacketNet) WrapPacketConn(pc net.PacketConn) net.PacketConn {
	return &pktPacketConn{PacketConn: pc, st: n.newState()}
}

// heldPkt is a datagram held back for reordered delivery.
type heldPkt struct {
	buf  []byte
	addr net.Addr // nil on connected conns
}

// pktState is one endpoint's fault-decision state. The RNG and the
// reorder hold are only touched under mu; emission happens under mu
// too, so the displaced ordering is itself deterministic.
type pktState struct {
	net      *PacketNet
	mu       sync.Mutex
	rng      *rand.Rand
	bad      bool // Gilbert–Elliott state
	held     *heldPkt
	holdLeft int // later datagrams to pass before the held one emits
	timer    *time.Timer
}

// process rolls this datagram's fate and performs the resulting
// transmissions through emit. The draw order is fixed — baseline loss,
// burst, fading, duplicate, reorder — and each feature draws only when
// configured, so enabling one never shifts another's seeded sequence.
func (s *pktState) process(b []byte, addr net.Addr, emit func([]byte, net.Addr)) {
	cfg := &s.net.cfg
	s.mu.Lock()
	defer s.mu.Unlock()
	s.net.packets.Add(1)

	drop := false
	dropCounter := &s.net.dropped
	if cfg.LossProb > 0 && s.rng.Float64() < cfg.LossProb {
		drop = true
	}
	if cfg.Burst.enabled() {
		if !s.bad {
			if s.rng.Float64() < cfg.Burst.EnterProb {
				s.bad = true
			}
		} else if s.rng.Float64() < cfg.Burst.ExitProb {
			s.bad = false
		}
		if s.bad && s.rng.Float64() < cfg.Burst.LossProb && !drop {
			drop = true
			dropCounter = &s.net.burstDropped
		}
	}
	if cfg.Fading.enabled() {
		block := int64(time.Since(s.net.start) / cfg.Fading.Coherence)
		p := cfg.Fading.GoodLoss
		if FadingOutage(cfg.Seed, block, cfg.Fading.OutageProb) {
			p = cfg.Fading.OutageLoss
		}
		if p > 0 && s.rng.Float64() < p && !drop {
			drop = true
			dropCounter = &s.net.fadeDropped
		}
	}
	dup := cfg.DupProb > 0 && s.rng.Float64() < cfg.DupProb
	hold := cfg.ReorderProb > 0 && s.rng.Float64() < cfg.ReorderProb

	justHeld := false
	if drop {
		dropCounter.Add(1)
	} else if hold && s.held == nil {
		justHeld = true
		s.net.reordered.Add(1)
		s.held = &heldPkt{buf: append([]byte(nil), b...), addr: addr}
		s.holdLeft = cfg.ReorderSpan
		// A held datagram must not wait forever when traffic pauses —
		// that would be loss, not reorder.
		s.timer = time.AfterFunc(cfg.ReorderFlush, func() {
			s.mu.Lock()
			defer s.mu.Unlock()
			s.releaseLocked(emit)
		})
	} else {
		emit(b, addr)
		if dup {
			s.net.duplicated.Add(1)
			emit(b, addr)
		}
	}

	// Every transmission attempt — even a dropped one — moves later
	// traffic past the held datagram.
	if !justHeld && s.held != nil && s.holdLeft > 0 {
		if s.holdLeft--; s.holdLeft == 0 {
			s.releaseLocked(emit)
		}
	}
}

// releaseLocked emits the held datagram, if any. Caller holds s.mu.
func (s *pktState) releaseLocked(emit func([]byte, net.Addr)) {
	if s.held == nil {
		return
	}
	h := s.held
	s.held = nil
	if s.timer != nil {
		s.timer.Stop()
		s.timer = nil
	}
	emit(h.buf, h.addr)
}

// pktConn is the client-side wrapper: faults on Write, reads untouched.
type pktConn struct {
	net.Conn
	st *pktState
}

func (c *pktConn) Write(b []byte) (int, error) {
	c.st.process(b, nil, func(p []byte, _ net.Addr) { c.Conn.Write(p) })
	return len(b), nil
}

// pktPacketConn is the server-side wrapper: faults on WriteTo, reads
// untouched.
type pktPacketConn struct {
	net.PacketConn
	st *pktState
}

func (c *pktPacketConn) WriteTo(b []byte, addr net.Addr) (int, error) {
	c.st.process(b, addr, func(p []byte, a net.Addr) { c.PacketConn.WriteTo(p, a) })
	return len(b), nil
}
