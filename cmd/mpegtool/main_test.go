package main

import (
	"os"
	"path/filepath"
	"testing"
)

func encodeTestStream(t *testing.T) string {
	t.Helper()
	out := filepath.Join(t.TempDir(), "s.m1s")
	if err := encode([]string{"-script", "tennis", "-w", "64", "-h", "48", "-frames", "18", "-o", out}); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestEncodeInspectDecode(t *testing.T) {
	stream := encodeTestStream(t)
	if err := inspect([]string{stream}); err != nil {
		t.Fatal(err)
	}
	dump := filepath.Join(t.TempDir(), "frames")
	if err := decode([]string{"-dump", dump, stream}); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dump)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 18 {
		t.Fatalf("%d PGM frames, want 18", len(entries))
	}
	// PGM header sanity on the first frame.
	data, err := os.ReadFile(filepath.Join(dump, entries[0].Name()))
	if err != nil {
		t.Fatal(err)
	}
	if string(data[:2]) != "P5" {
		t.Fatalf("not a PGM: %q", data[:2])
	}
}

func TestCorrupt(t *testing.T) {
	stream := encodeTestStream(t)
	if err := corrupt([]string{"-flips", "4", "-seed", "3", stream}); err != nil {
		t.Fatal(err)
	}
}

func TestSynthesizeUnknownScript(t *testing.T) {
	if _, err := synthesize("nope", 64, 48, 4, 1); err == nil {
		t.Fatal("unknown script should fail")
	}
}

func TestMissingFiles(t *testing.T) {
	if err := inspect([]string{}); err == nil {
		t.Fatal("inspect without file should fail")
	}
	if err := decode([]string{}); err == nil {
		t.Fatal("decode without file should fail")
	}
	if err := corrupt([]string{}); err == nil {
		t.Fatal("corrupt without file should fail")
	}
	if err := inspect([]string{"/nonexistent"}); err == nil {
		t.Fatal("missing stream should fail")
	}
}
