// Package core implements the lossless smoothing algorithm of Lam, Chow,
// and Yau, "An Algorithm for Lossless Smoothing of MPEG Video" (SIGCOMM
// 1994), together with the ideal smoothing reference of Section 3.2, an
// offline optimal baseline in the spirit of Ott et al., and the system
// model of Section 4.1.
//
// # System model
//
// Pictures arrive to a FIFO queue from an encoder: the S_i bits of picture
// i arrive during the interval ((i−1)τ, iτ]. A server drains the queue at
// a per-picture rate r_i chosen by the algorithm when it can begin sending
// picture i:
//
//	t_i = max(d_{i−1}, (i−1+K)τ)                          (2)
//	d_i = t_i + S_i / r_i                                  (3)
//	delay_i = d_i − (i−1)τ                                 (4)
//
// The algorithm is parameterized by K (pictures with known sizes before
// sending starts), D (per-picture delay bound), and H (lookahead
// interval). Theorem 1 guarantees that for K ≥ 1, choosing every r_i in
// [r_i^L, r_i^U] — equations (5) and (6) — satisfies the delay bound and
// continuous service (t_{i+1} = d_i).
//
// Go code uses 0-based picture indices j = i−1; the equations above are
// translated accordingly and the unit tests pin the translation to
// hand-computed schedules.
package core

import (
	"fmt"
	"math"

	"mpegsmooth/internal/metrics"
	"mpegsmooth/internal/trace"
)

// Variant selects the rate-selection rule on normal lookahead exit
// (Section 4.4).
//
// Deprecated: Variant survives as an alias onto the Policy interface
// (Basic maps to BasicPolicy, MovingAverage to MovingAveragePolicy).
// New code should set Config.Policy instead, which also admits
// CappedRate and MinimumVariability.
type Variant int

const (
	// Basic holds the previous rate unless it falls outside the
	// accumulated [lower, upper] bounds — the rule designed to minimize
	// the number of rate changes.
	Basic Variant = iota
	// MovingAverage proposes sum/(Nτ) (Eq. 15) instead: more small rate
	// changes, but r(t) tracks ideal smoothing more closely (smaller
	// area difference).
	MovingAverage
)

// String names the variant.
func (v Variant) String() string {
	switch v {
	case Basic:
		return "basic"
	case MovingAverage:
		return "moving-average"
	}
	return fmt.Sprintf("Variant(%d)", int(v))
}

// Config parameterizes a smoothing run.
type Config struct {
	// K is the required number of complete pictures buffered before the
	// server may begin sending the next picture. Theorem 1 requires K ≥ 1
	// for the delay bound to be guaranteed; K = 0 is permitted for
	// experiments and may violate the bound.
	K int
	// D is the per-picture delay bound in seconds. Must satisfy
	// D ≥ (K+1)τ for the bound to be satisfiable (Eq. 1).
	D float64
	// H is the lookahead interval in pictures (H ≥ 1). The inner loop
	// examines pictures i .. i+H−1. SmoothAll (only) resolves H = 0 to
	// each trace's pattern length N — the paper's usual choice, and the
	// form that lets one Config serve a batch of traces with different
	// patterns.
	H int
	// Variant selects Basic or MovingAverage rate selection.
	//
	// Deprecated: use Policy. Variant is consulted only when Policy is
	// nil, as a backwards-compatible alias.
	Variant Variant
	// Policy owns rate selection within the accumulated Theorem 1 band.
	// nil means the policy implied by Variant (BasicPolicy by default).
	Policy Policy
	// Estimator supplies sizes for pictures that have not arrived.
	// Defaults to PatternEstimator with the paper's initial estimates.
	Estimator Estimator
}

// Validate checks the configuration against the trace's picture period.
func (c Config) Validate(tau float64) error {
	if c.K < 0 {
		return fmt.Errorf("core: K = %d must be >= 0", c.K)
	}
	if c.H < 1 {
		return fmt.Errorf("core: H = %d must be >= 1", c.H)
	}
	if c.D <= 0 {
		return fmt.Errorf("core: D = %v must be positive", c.D)
	}
	// Eq. (1): D >= (K+1)τ. Required for K >= 1; for the K = 0
	// experiments any positive D is accepted (violations are the point).
	if c.K >= 1 && c.D < float64(c.K+1)*tau-1e-12 {
		return fmt.Errorf("core: D = %v violates D >= (K+1)τ = %v", c.D, float64(c.K+1)*tau)
	}
	if v, ok := c.Policy.(policyValidator); ok {
		if err := v.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Schedule is the output of a smoothing run: per-picture rates and the
// resulting timing, all in seconds and bits/second.
type Schedule struct {
	Trace  *trace.Trace
	Config Config
	Rates  []float64 // r_i selected for each picture
	Start  []float64 // t_i: time the server begins sending picture i
	Depart []float64 // d_i: time the last bit of picture i leaves
	Delays []float64 // delay_i = d_i − arrival start of picture i
	// LowerBound and UpperBound record the Theorem 1 bounds r^L, r^U
	// (h = 0, actual S_i) at each t_i, for verification.
	LowerBound []float64
	UpperBound []float64
}

// RateFunc returns r(t) as a step function over [t_1, d_n).
func (s *Schedule) RateFunc() (*metrics.StepFunc, error) {
	n := len(s.Rates)
	times := make([]float64, 0, n)
	values := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		// Guard against zero-length sends (cannot happen with positive
		// sizes, but keep the step function valid regardless).
		if len(times) > 0 && s.Start[i] <= times[len(times)-1] {
			continue
		}
		times = append(times, s.Start[i])
		values = append(values, s.Rates[i])
	}
	return metrics.NewStepFunc(times, values, s.Depart[n-1])
}

// PeakRate returns the largest per-picture transmission rate: the
// schedule's traffic descriptor. A sender declares it in a transport
// StreamHello, and an admission controller reserves it against a shared
// link — the sum of admitted peaks never exceeding the link capacity is
// what makes the multiplexing of Section 5 lossless.
func (s *Schedule) PeakRate() float64 {
	peak := 0.0
	for _, r := range s.Rates {
		if r > peak {
			peak = r
		}
	}
	return peak
}

// MaxDelay returns the largest per-picture delay.
func (s *Schedule) MaxDelay() float64 {
	max := 0.0
	for _, d := range s.Delays {
		if d > max {
			max = d
		}
	}
	return max
}

// CheckDelayBound verifies delay_i <= D for every picture (Theorem 1,
// property (7)). It returns the first violating picture, or -1.
func (s *Schedule) CheckDelayBound() int {
	for i, d := range s.Delays {
		if d > s.Config.D+1e-9 {
			return i
		}
	}
	return -1
}

// CheckContinuousService verifies t_{i+1} = d_i for every picture
// (Theorem 1, property (9)). It returns the first violating picture
// boundary, or -1.
func (s *Schedule) CheckContinuousService() int {
	for i := 1; i < len(s.Start); i++ {
		if math.Abs(s.Start[i]-s.Depart[i-1]) > 1e-9 {
			return i
		}
	}
	return -1
}

// CheckRatesWithinBounds verifies r_i ∈ [r_i^L, r_i^U] (the hypothesis of
// Theorem 1). It returns the first violating picture, or -1.
func (s *Schedule) CheckRatesWithinBounds() int {
	for i, r := range s.Rates {
		if r < s.LowerBound[i]*(1-1e-12)-1e-9 || r > s.UpperBound[i]*(1+1e-12)+1e-9 {
			return i
		}
	}
	return -1
}

// PolicyViolations is the policy's violation report: the pictures whose
// selected rate lies outside the Theorem 1 band. For K ≥ 1 and a
// band-respecting policy (BasicPolicy, MovingAveragePolicy,
// MinimumVariability) it is always empty; a CappedRate ceiling below the
// band's lower bound forces entries here — each one a picture whose
// delay bound the cap made unavoidable (Verify reports the resulting
// delay violation too).
func (s *Schedule) PolicyViolations() []int {
	var out []int
	for i, r := range s.Rates {
		if r < s.LowerBound[i]*(1-1e-12)-1e-9 || r > s.UpperBound[i]*(1+1e-12)+1e-9 {
			out = append(out, i)
		}
	}
	return out
}

// CheckConservation verifies that every picture's bits are fully
// transmitted: (d_i − t_i)·r_i = S_i. It returns the first violating
// picture, or -1.
func (s *Schedule) CheckConservation() int {
	for i := range s.Rates {
		sent := (s.Depart[i] - s.Start[i]) * s.Rates[i]
		if math.Abs(sent-float64(s.Trace.Sizes[i])) > 1e-6*float64(s.Trace.Sizes[i])+1e-3 {
			return i
		}
	}
	return -1
}

// CheckCausality verifies the server never sends bits of a picture that
// has not fully arrived when K >= 1: t_i >= iτ for 0-based i (the picture
// arrives during (iτ, (i+1)τ] ... with K >= 1, t_i >= (i+K)τ >= (i+1)τ).
// It returns the first violating picture, or -1.
func (s *Schedule) CheckCausality() int {
	if s.Config.K < 1 {
		return -1
	}
	tau := s.Trace.Tau
	for i := range s.Start {
		if s.Start[i] < float64(i+1)*tau-1e-9 {
			return i
		}
	}
	return -1
}
