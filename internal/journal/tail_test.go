package journal

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// runFollowRace races a live Follow subscriber against a writer that
// keeps the journal under constant rotation pressure (tiny segments
// plus explicit Compacts). The guarantee under test: the feed carries
// whole frames only — every received frame parses exactly once with no
// remainder — and replaying snapshot + frames reconstructs the
// journal's final state byte-for-byte, no matter how rotations
// interleave with the tail.
func runFollowRace(t *testing.T, fs FS, seed int64, strict bool) {
	j, err := Open(Config{FS: fs, FlushInterval: noFlush, SegmentBytes: 512, Logf: t.Logf})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	snapshot, at, frames, cancel, err := j.Follow(1 << 15)
	if err != nil {
		t.Fatalf("Follow: %v", err)
	}
	defer cancel()
	if at.Records != 0 || at.Bytes != 0 {
		t.Fatalf("fresh journal's feed starts at %+v, want zero cursor", at)
	}
	recs, valid, err := ScanSegment(snapshot)
	if err != nil || valid != len(snapshot) {
		t.Fatalf("snapshot does not scan clean: %d of %d bytes, err %v", valid, len(snapshot), err)
	}
	replica := newState()
	for _, r := range recs {
		replica.apply(r)
	}

	done := make(chan struct{})
	var tailed int
	go func() {
		defer close(done)
		for frame := range frames {
			rec, n, perr := ParseFrame(frame)
			if perr != nil {
				t.Errorf("torn frame on the feed after %d good ones: %v", tailed, perr)
				return
			}
			if n != len(frame) {
				t.Errorf("feed frame not consumed exactly: %d of %d bytes", n, len(frame))
				return
			}
			replica.apply(rec)
			tailed++
		}
	}()

	rng := rand.New(rand.NewSource(seed))
	var live []uint64
	var next uint64
	const ops = 3000
	for i := 0; i < ops; i++ {
		switch k := rng.Intn(10); {
		case k < 3:
			next++
			if _, err := j.Admitted(testStream(next)); err == nil {
				live = append(live, next)
			}
		case k < 6 && len(live) > 0:
			tok := live[rng.Intn(len(live))]
			j.Watermark(tok, rng.Intn(60)+1, []byte{byte(tok), byte(tok >> 8)})
			if rng.Intn(4) == 0 {
				j.Flush()
			}
		case k < 8 && len(live) > 0:
			idx := rng.Intn(len(live))
			if _, err := j.Completed(testTomb(live[idx], 60)); err == nil {
				live = append(live[:idx], live[idx+1:]...)
			}
		case k < 9 && len(live) > 1:
			idx := rng.Intn(len(live))
			if _, err := j.Expired(live[idx], live[idx], ExpireFailed); err == nil {
				live = append(live[:idx], live[idx+1:]...)
			}
		default:
			// Explicit compaction, racing the tail on top of the organic
			// size-triggered rotations.
			j.Compact()
		}
	}
	stats := j.Stats()
	// Close flushes the remaining coalesced watermarks (publishing them)
	// and then closes the feed; only after the channel closes has the
	// replica seen everything, so the state comparison comes last.
	if err := j.Close(); err != nil && strict {
		t.Fatalf("Close: %v", err)
	}
	<-done

	// White-box: compare against the live ledger (State() reports the
	// state recovered at Open, which is empty here).
	j.mu.Lock()
	final := j.state.clone()
	j.mu.Unlock()
	if !reflect.DeepEqual(replica.Streams, final.Streams) {
		t.Errorf("replayed feed diverged on live streams:\n  replica %d stream(s)\n  journal %d stream(s)",
			len(replica.Streams), len(final.Streams))
	}
	if !reflect.DeepEqual(replica.Tombstones, final.Tombstones) {
		t.Errorf("replayed feed diverged on tombstones: replica %d, journal %d",
			len(replica.Tombstones), len(final.Tombstones))
	}
	if tailed == 0 {
		t.Error("the tail saw no frames at all")
	}
	if stats.Rotations < 5 {
		t.Errorf("only %d rotations — the race never had rotation pressure", stats.Rotations)
	}
	t.Logf("seed %d: %d frames tailed across %d rotations, %d live / %d tombstones at rest",
		seed, tailed, stats.Rotations, len(final.Streams), len(final.Tombstones))
}

// TestFollowRotationRace pins the no-torn-frames guarantee on a clean
// in-memory filesystem across several seeds.
func TestFollowRotationRace(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runFollowRace(t, NewMemFS(), seed, true)
		})
	}
}

// TestFollowRotationRaceFaults repeats the race under seeded write and
// fsync fault injection: failed appends are truncated away before
// publication, so the feed must still never carry a torn or phantom
// frame, and replica and journal must still agree exactly.
func TestFollowRotationRaceFaults(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			fs := NewFaultFS(NewMemFS(), FaultConfig{Seed: seed, WriteErrProb: 0.01, SyncErrProb: 0.01})
			runFollowRace(t, fs, seed, false)
		})
	}
}
