package transport

import (
	"hash/fnv"
	"math/rand"
	"testing"
)

func testPayloads(t *testing.T, n int) [][]byte {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	out := make([][]byte, n)
	for i := range out {
		out[i] = make([]byte, 16+rng.Intn(64))
		rng.Read(out[i])
	}
	return out
}

// TestFNVPrefixMatchesStdlib pins the hand-rolled FNV-1a step against
// hash/fnv: the resumable prefix hash must produce byte-identical sums
// to the pre-negotiation code path (and to every existing tombstone).
func TestFNVPrefixMatchesStdlib(t *testing.T) {
	payloads := testPayloads(t, 8)
	h, err := NewPrefixHash(IntegrityFNV, nil)
	if err != nil {
		t.Fatal(err)
	}
	std := fnv.New64a()
	if h.Sum64() != std.Sum64() {
		t.Fatalf("empty prefix: %016x vs stdlib %016x", h.Sum64(), std.Sum64())
	}
	for i, p := range payloads {
		h.Absorb(p)
		std.Write(p)
		if h.Sum64() != std.Sum64() {
			t.Fatalf("after %d payloads: %016x vs stdlib %016x", i+1, h.Sum64(), std.Sum64())
		}
	}
}

// TestPrefixHashStateRoundTrip is the property the crash journal relies
// on: State() captured at any watermark, Restored into a fresh hash,
// continues to the identical final sum.
func TestPrefixHashStateRoundTrip(t *testing.T) {
	payloads := testPayloads(t, 10)
	key := []byte("test-integrity-key")
	for _, mode := range []IntegrityMode{IntegrityFNV, IntegrityHMAC} {
		t.Run(mode.String(), func(t *testing.T) {
			full, err := NewPrefixHash(mode, key)
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range payloads {
				full.Absorb(p)
			}
			want := full.Sum64()

			for cut := 0; cut <= len(payloads); cut++ {
				first, _ := NewPrefixHash(mode, key)
				for _, p := range payloads[:cut] {
					first.Absorb(p)
				}
				state := first.State()
				second, _ := NewPrefixHash(mode, key)
				if err := second.Restore(state); err != nil {
					t.Fatalf("cut %d: Restore: %v", cut, err)
				}
				for _, p := range payloads[cut:] {
					second.Absorb(p)
				}
				if got := second.Sum64(); got != want {
					t.Fatalf("cut %d: resumed sum %016x, want %016x", cut, got, want)
				}
				if sum, err := PrefixSum(mode, key, payloads, cut); err != nil || sum != first.Sum64() {
					t.Fatalf("cut %d: PrefixSum = %016x, %v; want %016x", cut, sum, err, first.Sum64())
				}
			}
		})
	}
}

func TestHMACPrefixProperties(t *testing.T) {
	payloads := testPayloads(t, 4)
	sum := func(key string) uint64 {
		s, err := PrefixSum(IntegrityHMAC, []byte(key), payloads, len(payloads))
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	if sum("key-a") == sum("key-b") {
		t.Error("different keys produced the same tag")
	}
	// Order sensitivity: swapping payloads changes the chain.
	swapped := [][]byte{payloads[1], payloads[0], payloads[2], payloads[3]}
	a, _ := PrefixSum(IntegrityHMAC, []byte("k"), payloads, 4)
	b, _ := PrefixSum(IntegrityHMAC, []byte("k"), swapped, 4)
	if a == b {
		t.Error("payload order does not affect the chained tag")
	}
	if _, err := NewPrefixHash(IntegrityHMAC, nil); err == nil {
		t.Error("keyless HMAC mode accepted")
	}
	if _, err := NewPrefixHash(IntegrityMode(9), nil); err == nil {
		t.Error("unknown mode accepted")
	}
	var h PrefixHash
	h, _ = NewPrefixHash(IntegrityHMAC, []byte("k"))
	if err := h.Restore([]byte{1, 2, 3}); err == nil {
		t.Error("short HMAC state accepted")
	}
	h, _ = NewPrefixHash(IntegrityFNV, nil)
	if err := h.Restore([]byte{1, 2, 3}); err == nil {
		t.Error("short FNV state accepted")
	}
}
