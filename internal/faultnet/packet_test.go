package faultnet

import (
	"encoding/binary"
	"net"
	"testing"
	"time"
)

// runPacketTrace pushes n index-stamped datagrams through one
// endpoint's fault state and returns the emitted index order (a
// dropped index never appears; a duplicated one appears twice).
func runPacketTrace(cfg PacketConfig, n int) ([]int, PacketCounts) {
	nw := NewPacketNet(cfg)
	st := nw.newState()
	var order []int
	emit := func(b []byte, _ net.Addr) { order = append(order, int(binary.BigEndian.Uint32(b))) }
	for i := 0; i < n; i++ {
		var b [4]byte
		binary.BigEndian.PutUint32(b[:], uint32(i))
		st.process(b[:], nil, emit)
	}
	st.mu.Lock()
	st.releaseLocked(emit)
	st.mu.Unlock()
	return order, nw.Counts()
}

// TestPacketTraceDeterministic: the same seed replays the same packet
// fates — drops, duplicates, and displacements — and displacement is
// bounded by the configured span.
func TestPacketTraceDeterministic(t *testing.T) {
	cfg := PacketConfig{
		Seed:        42,
		LossProb:    0.1,
		DupProb:     0.05,
		ReorderProb: 0.05,
		ReorderSpan: 3,
		// Never let the wall-clock flush timer race the trace.
		ReorderFlush: time.Hour,
	}
	const n = 500
	first, counts := runPacketTrace(cfg, n)
	second, counts2 := runPacketTrace(cfg, n)
	if len(first) != len(second) {
		t.Fatalf("trace lengths differ: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("traces diverge at %d: %d vs %d", i, first[i], second[i])
		}
	}
	if counts != counts2 {
		t.Fatalf("counts differ across identical runs: %+v vs %+v", counts, counts2)
	}
	if counts.Dropped == 0 || counts.Duplicated == 0 || counts.Reordered == 0 {
		t.Fatalf("expected every fault kind to fire over %d packets: %+v", n, counts)
	}

	// Bounded displacement: a held datagram passes at most ReorderSpan
	// later datagrams, so at the first emission of index v, at most
	// ReorderSpan distinct higher indices may already have appeared.
	firstPos := make(map[int]int)
	for pos, v := range first {
		if _, seen := firstPos[v]; !seen {
			firstPos[v] = pos
		}
	}
	for v, pos := range firstPos {
		ahead := map[int]bool{}
		for _, w := range first[:pos] {
			if w > v {
				ahead[w] = true
			}
		}
		if len(ahead) > cfg.ReorderSpan {
			t.Fatalf("index %d displaced past %d later datagrams, span is %d",
				v, len(ahead), cfg.ReorderSpan)
		}
	}
}

// TestPacketBurstLossClusters: Gilbert–Elliott drops arrive in runs,
// not as isolated losses.
func TestPacketBurstLossClusters(t *testing.T) {
	cfg := PacketConfig{
		Seed:  7,
		Burst: PacketBurst{EnterProb: 0.05, ExitProb: 0.25, LossProb: 1},
	}
	const n = 1000
	order, counts := runPacketTrace(cfg, n)
	if counts.BurstDropped == 0 {
		t.Fatal("burst model enabled but dropped nothing")
	}
	delivered := make([]bool, n)
	for _, v := range order {
		delivered[v] = true
	}
	longest, run := 0, 0
	for _, ok := range delivered {
		if !ok {
			if run++; run > longest {
				longest = run
			}
		} else {
			run = 0
		}
	}
	if longest < 3 {
		t.Fatalf("longest loss burst is %d packets; Gilbert–Elliott losses should cluster", longest)
	}
}

// TestFadingOutageStationary: the block-state hash is deterministic
// per (seed, block) and hits the configured outage fraction.
func TestFadingOutageStationary(t *testing.T) {
	const blocks = 20000
	outages := 0
	for b := int64(0); b < blocks; b++ {
		if FadingOutage(99, b, 0.3) != FadingOutage(99, b, 0.3) {
			t.Fatal("FadingOutage not deterministic")
		}
		if FadingOutage(99, b, 0.3) {
			outages++
		}
	}
	frac := float64(outages) / blocks
	if frac < 0.27 || frac > 0.33 {
		t.Fatalf("outage fraction %.3f, want ≈0.3", frac)
	}
	differs := false
	for b := int64(0); b < 64 && !differs; b++ {
		differs = FadingOutage(99, b, 0.3) != FadingOutage(100, b, 0.3)
	}
	if !differs {
		t.Fatal("different seeds produced identical fading processes")
	}
}

// TestPacketFadingOutageDropsEverything: with every block in outage at
// loss rate 1, the channel is a black hole; with no outage blocks, it
// is clean — the two endpoints of the fading model's range.
func TestPacketFadingOutageDropsEverything(t *testing.T) {
	blackout := PacketConfig{
		Seed:   3,
		Fading: FadingConfig{Coherence: time.Second, OutageProb: 1, OutageLoss: 1},
	}
	order, counts := runPacketTrace(blackout, 100)
	if len(order) != 0 || counts.FadeDropped != 100 {
		t.Fatalf("full outage delivered %d packets (FadeDropped=%d)", len(order), counts.FadeDropped)
	}

	clean := PacketConfig{
		Seed:   3,
		Fading: FadingConfig{Coherence: time.Second, OutageProb: 0, OutageLoss: 1},
	}
	order, counts = runPacketTrace(clean, 100)
	if len(order) != 100 || counts.FadeDropped != 0 {
		t.Fatalf("outage-free fading dropped packets: delivered=%d FadeDropped=%d",
			len(order), counts.FadeDropped)
	}
}

// captureConn records every datagram written through it.
type captureConn struct {
	net.Conn // nil: only Write is exercised
	writes   [][]byte
}

func (c *captureConn) Write(b []byte) (int, error) {
	c.writes = append(c.writes, append([]byte(nil), b...))
	return len(b), nil
}

type capturePacketConn struct {
	net.PacketConn // nil: only WriteTo is exercised
	writes         [][]byte
}

func (c *capturePacketConn) WriteTo(b []byte, _ net.Addr) (int, error) {
	c.writes = append(c.writes, append([]byte(nil), b...))
	return len(b), nil
}

// TestPacketWrappersInjectOnEgress: both wrapper shapes fault the
// write path — a total-loss config suppresses every transmission while
// reporting success to the caller, exactly how loss looks to a sender.
func TestPacketWrappersInjectOnEgress(t *testing.T) {
	nw := NewPacketNet(PacketConfig{Seed: 1, LossProb: 1})

	cc := &captureConn{}
	wc := nw.WrapConn(cc)
	if n, err := wc.Write([]byte("datagram")); n != 8 || err != nil {
		t.Fatalf("Write = (%d, %v), want (8, nil)", n, err)
	}
	if len(cc.writes) != 0 {
		t.Fatal("total loss still transmitted on client conn")
	}

	pc := &capturePacketConn{}
	wp := nw.WrapPacketConn(pc)
	if n, err := wp.WriteTo([]byte("datagram"), nil); n != 8 || err != nil {
		t.Fatalf("WriteTo = (%d, %v), want (8, nil)", n, err)
	}
	if len(pc.writes) != 0 {
		t.Fatal("total loss still transmitted on server socket")
	}
	if got := nw.Counts().Dropped; got != 2 {
		t.Fatalf("Dropped = %d, want 2", got)
	}
}
