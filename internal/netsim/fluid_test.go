package netsim

import (
	"math"
	"testing"

	"mpegsmooth/internal/metrics"
	"mpegsmooth/internal/trace"
)

func fluidConst(t testing.TB, rate, duration float64) *metrics.StepFunc {
	t.Helper()
	f, err := metrics.NewStepFunc([]float64{0}, []float64{rate}, duration)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestFluidUnderloadLosesNothing(t *testing.T) {
	res, err := RunFluid(FluidConfig{
		Streams:  []FluidStream{{Rate: fluidConst(t, 1e6, 2)}},
		LinkRate: 2e6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.LostCells != 0 {
		t.Fatalf("lost %v cells under load 0.5", res.LostCells)
	}
	want := 1e6 * 2 / CellBits
	if math.Abs(res.ArrivedCells-want) > 1e-6*want {
		t.Fatalf("arrived %v cells, want %v", res.ArrivedCells, want)
	}
}

func TestFluidOverloadClosedForm(t *testing.T) {
	// 4 Mbps into a 2 Mbps link with zero buffer for 2 s: exactly half
	// the fluid is lost, in closed form.
	res, err := RunFluid(FluidConfig{
		Streams:  []FluidStream{{Rate: fluidConst(t, 4e6, 2)}},
		LinkRate: 2e6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := res.LossProbability(); math.Abs(p-0.5) > 1e-9 {
		t.Fatalf("loss probability %v, want exactly 0.5", p)
	}
	if len(res.Sources) != 1 {
		t.Fatalf("%d source stats", len(res.Sources))
	}
	if l := res.Sources[0].LostCells; math.Abs(l-res.LostCells) > 1e-9*res.LostCells {
		t.Fatalf("attributed loss %v, aggregate %v", l, res.LostCells)
	}
}

func TestFluidBufferAbsorbsBurst(t *testing.T) {
	// 1 s at 4 Mbps then 1 s silent into a 2.5 Mbps link. The burst
	// deposits (4-2.5)Mb = 1.5 Mb; a buffer larger than that loses
	// nothing, a half-size buffer loses the rest.
	mk := func() *metrics.StepFunc {
		f, err := metrics.NewStepFunc([]float64{0, 1}, []float64{4e6, 0}, 2)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	bigCells := int(math.Ceil(1.6e6 / CellBits))
	big, err := RunFluid(FluidConfig{
		Streams:     []FluidStream{{Rate: mk()}},
		LinkRate:    2.5e6,
		BufferCells: bigCells,
	})
	if err != nil {
		t.Fatal(err)
	}
	if big.LostCells != 0 {
		t.Fatalf("big buffer lost %v cells", big.LostCells)
	}
	// High-water mark: 1.5 Mb worth of cells.
	if want := 1.5e6 / CellBits; math.Abs(big.MaxQueueCells-want) > 1e-6*want {
		t.Fatalf("max queue %v cells, want %v", big.MaxQueueCells, want)
	}
	halfCells := int(math.Floor(0.75e6 / CellBits))
	small, err := RunFluid(FluidConfig{
		Streams:     []FluidStream{{Rate: mk()}},
		LinkRate:    2.5e6,
		BufferCells: halfCells,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Lost fluid = 1.5 Mb deposited minus what the buffer held.
	wantLost := (1.5e6 - float64(halfCells)*CellBits) / CellBits
	if math.Abs(small.LostCells-wantLost) > 1e-6*wantLost {
		t.Fatalf("small buffer lost %v cells, want %v", small.LostCells, wantLost)
	}
}

func TestFluidMatchesCellLayer(t *testing.T) {
	// On a real smoothed-video workload the fluid loss probability must
	// track the cell-exact simulation closely (they model the same
	// system; fluid ignores only cell-granularity).
	const n = 6
	var rates []*metrics.StepFunc
	var mean float64
	for i := 0; i < n; i++ {
		tr, err := trace.Generate(trace.SynthConfig{
			Name:  "fvc",
			GOP:   mpegGOP(),
			IBase: 200_000, PBase: 90_000, BBase: 30_000,
			Scenes: []trace.ScenePhase{{Pictures: 99, Complexity: 1, Motion: 0.8}},
			Seed:   int64(300 + i),
		})
		if err != nil {
			t.Fatal(err)
		}
		mean += tr.MeanRate()
		rates = append(rates, RawRateFunc(t, tr))
	}
	offsets := make([]float64, n)
	for i := range offsets {
		offsets[i] = float64(i) * 0.017
	}
	cell, err := Run(RunConfig{
		Rates: rates, Offsets: offsets, LinkRate: mean * 1.05, BufferCells: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	streams := make([]FluidStream, n)
	for i := range streams {
		streams[i] = FluidStream{Rate: rates[i], Offset: offsets[i]}
	}
	fluid, err := RunFluid(FluidConfig{
		Streams: streams, LinkRate: mean * 1.05, BufferCells: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	pc, pf := cell.LossProbability(), fluid.LossProbability()
	t.Logf("cell loss %.5f, fluid loss %.5f", pc, pf)
	if pc == 0 {
		t.Fatal("config not discriminating: cell layer lost nothing")
	}
	if math.Abs(pc-pf) > 0.25*pc {
		t.Fatalf("fluid loss %.5f diverges from cell loss %.5f", pf, pc)
	}
	if fluid.Events >= int(cell.Arrived) {
		t.Fatalf("fluid fired %d events for %d cells — no batching win", fluid.Events, cell.Arrived)
	}
}

func TestFluidDeterminism(t *testing.T) {
	mk := func() (*FluidResult, error) {
		bg, err := trace.OnOffPareto(trace.OnOffParetoConfig{
			PeakRate: 2e6, MeanOn: 0.2, MeanOff: 0.5, Duration: 5, Seed: 42,
		})
		if err != nil {
			t.Fatal(err)
		}
		return RunFluid(FluidConfig{
			Streams: []FluidStream{
				{Rate: bg},
				{Rate: fluidConst(t, 1e6, 5), Offset: 0.3,
					Shaper: &ShaperConfig{Sustained: 8e5, Peak: 1.2e6, BurstBits: 1e5}},
			},
			LinkRate:    1.8e6,
			BufferCells: 30,
		})
	}
	a, err := mk()
	if err != nil {
		t.Fatal(err)
	}
	b, err := mk()
	if err != nil {
		t.Fatal(err)
	}
	if a.ArrivedCells != b.ArrivedCells || a.LostCells != b.LostCells ||
		a.ServedCells != b.ServedCells || a.BufferedCells != b.BufferedCells ||
		a.MaxQueueCells != b.MaxQueueCells || a.Events != b.Events {
		t.Fatalf("same seed, different results:\n%+v\n%+v", a, b)
	}
	for i := range a.Sources {
		if a.Sources[i] != b.Sources[i] {
			t.Fatalf("same seed, source %d differs: %+v vs %+v", i, a.Sources[i], b.Sources[i])
		}
	}
}

func TestShaperDelaysInsteadOfLosing(t *testing.T) {
	// A 4 Mbps half-second burst through a 1 Mbps sustained shaper into
	// an ample link: nothing is lost, but the shaper reports the queueing
	// delay the bandwidth limit imposed.
	burst, err := metrics.NewStepFunc([]float64{0, 0.5}, []float64{4e6, 0}, 8)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunFluid(FluidConfig{
		Streams: []FluidStream{{
			Rate:   burst,
			Shaper: &ShaperConfig{Sustained: 1e6},
		}},
		LinkRate:    10e6,
		BufferCells: 0,
		Horizon:     8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.LostCells != 0 {
		t.Fatalf("shaped stream lost %v cells", res.LostCells)
	}
	// Burst deposits 2 Mb; drained at 1 Mbps the backlog peaks at
	// (4-1) Mbps · 0.5 s = 1.5 Mb → 1.5 s max delay.
	if d := res.Sources[0].MaxShapingDelay; math.Abs(d-1.5) > 0.01 {
		t.Fatalf("max shaping delay %v s, want 1.5", d)
	}
	// All fluid eventually reaches the mux: arrivals equal the burst.
	want := 2e6 / CellBits
	if math.Abs(res.ArrivedCells-want) > 1e-3*want {
		t.Fatalf("arrived %v cells, want %v", res.ArrivedCells, want)
	}
}

func TestShaperPeakAndBurst(t *testing.T) {
	// With a full bucket of 1 Mb and peak 3 Mbps over sustained 1 Mbps,
	// a 3 Mbps input passes unshaped until the bucket drains
	// (1 Mb / (3-1) Mbps = 0.5 s), then is throttled to 1 Mbps.
	in, err := metrics.NewStepFunc([]float64{0}, []float64{3e6}, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Zero-buffer mux at 1.5 Mbps: the unshaped phase overloads it, the
	// throttled phase does not. Loss pins down the transition time.
	res, err := RunFluid(FluidConfig{
		Streams: []FluidStream{{
			Rate:   in,
			Shaper: &ShaperConfig{Sustained: 1e6, Peak: 3e6, BurstBits: 1e6},
		}},
		LinkRate:    1.5e6,
		BufferCells: 0,
		Horizon:     10,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Overflow only during the 0.5 s peak phase: (3-1.5) Mbps · 0.5 s.
	wantLost := 1.5e6 * 0.5 / CellBits
	if math.Abs(res.LostCells-wantLost) > 0.02*wantLost {
		t.Fatalf("lost %v cells, want %v (peak phase mistimed)", res.LostCells, wantLost)
	}
}

func TestShaperValidation(t *testing.T) {
	eng := NewEngine(1e9)
	mux, err := NewFluidMux(1e6, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewShaper(eng, mux, 0, ShaperConfig{Sustained: 0}); err == nil {
		t.Error("zero sustained rate should fail")
	}
	if _, err := NewShaper(eng, mux, 0, ShaperConfig{Sustained: 2e6, Peak: 1e6}); err == nil {
		t.Error("peak below sustained should fail")
	}
	if _, err := NewShaper(eng, mux, 0, ShaperConfig{Sustained: 1e6, BurstBits: -1}); err == nil {
		t.Error("negative burst should fail")
	}
}

func TestRunFluidValidation(t *testing.T) {
	if _, err := RunFluid(FluidConfig{LinkRate: 1e6}); err == nil {
		t.Error("no streams should fail")
	}
	if _, err := RunFluid(FluidConfig{
		Streams:  []FluidStream{{Rate: fluidConst(t, 1e6, 1), Offset: -1}},
		LinkRate: 1e6,
	}); err == nil {
		t.Error("negative offset should fail")
	}
	if _, err := RunFluid(FluidConfig{
		Streams:  []FluidStream{{Rate: fluidConst(t, 1e6, 1)}},
		LinkRate: 0,
	}); err == nil {
		t.Error("zero link rate should fail")
	}
}

func TestFluidManyStreamsScales(t *testing.T) {
	// A thousand staggered on/off streams: the fluid layer must finish
	// with event count proportional to breakpoints, and conservation must
	// hold at scale.
	if testing.Short() {
		t.Skip("scale test")
	}
	const n = 1000
	streams := make([]FluidStream, n)
	for i := 0; i < n; i++ {
		bg, err := trace.OnOffPareto(trace.OnOffParetoConfig{
			PeakRate: 3e5, MeanOn: 0.3, MeanOff: 0.7, Duration: 10, Seed: int64(i + 1),
		})
		if err != nil {
			t.Fatal(err)
		}
		streams[i] = FluidStream{Rate: bg, Offset: float64(i%97) * 0.01}
	}
	res, err := RunFluid(FluidConfig{
		Streams:     streams,
		LinkRate:    float64(n) * 3e5 * 0.35, // ~1.15x the 0.3 duty-cycle mean
		BufferCells: 2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%d streams: %d events, %.0f cells arrived, loss %.4f",
		n, res.Events, res.ArrivedCells, res.LossProbability())
	if res.ArrivedCells <= 0 {
		t.Fatal("nothing arrived")
	}
}
