package core

import (
	"math"
	"testing"

	"mpegsmooth/internal/mpeg"
	"mpegsmooth/internal/trace"
)

// The inner lookahead loop of Figure 2 has three exits: early exit with
// the lower bound rising past the upper (rate := upper), early exit with
// the upper bound falling below the lower (rate := lower), and normal
// exit after H pictures. These tests construct traces that force each
// path and check the selected rate against hand analysis.

// TestEarlyExitLowerRises: a tiny picture followed by a huge one. At
// h=0 the bounds are low; at h=1 the accumulated sum explodes, pushing
// the lower bound above the (unchanged) running upper bound. The
// algorithm must select the running upper bound.
func TestEarlyExitLowerRises(t *testing.T) {
	// τ=0.1, K=1, D=0.5, H=2.
	// Picture 0: S=1000. Picture 1: S=1_000_000.
	// t_0 = 0.1.
	// h=0: lower = 1000/(0.5+0-0.1) = 2500; upper = 1000/(0.2-0.1) = 10000.
	// h=1: sum=1001000; lower = 1001000/(0.5+0.1-0.1) = 2002000 > upper.
	//      upper(1) = 1001000/(0.3-0.1) = 5005000; running upper stays 10000.
	// Early exit with lower risen → rate := upper = 10000.
	tr := &trace.Trace{Name: "e1", Tau: 0.1, GOP: mpeg.GOP{M: 1, N: 1}, Sizes: []int64{1000, 1_000_000}}
	s, err := Smooth(tr, Config{K: 1, H: 2, D: 0.5, Estimator: OracleEstimator{}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Rates[0]-10000) > 1e-9 {
		t.Fatalf("r_0 = %v, want 10000 (early exit, rate := upper)", s.Rates[0])
	}
}

// TestEarlyExitUpperFalls: a huge picture followed by a tiny one. The
// h=1 upper bound (continuous service for the tiny follower) collapses
// below the h=0 lower bound. The algorithm must select the running
// lower bound.
func TestEarlyExitUpperFalls(t *testing.T) {
	// τ=0.1, K=1, D=0.21, H=2.
	// Picture 0: S=100000; picture 1: S=10.
	// t_0 = 0.1.
	// h=0: lower = 100000/(0.21-0.1) = 909090.9...; upper = 100000/0.1 = 1e6.
	// h=1: sum=100010; upper(1) = 100010/(0.3-0.1) = 500050 < lower!
	// lower(1) = 100010/(0.21+0.1-0.1) = 476238... < running lower.
	// Early exit with upper fallen → rate := lower = 909090.9...
	tr := &trace.Trace{Name: "e2", Tau: 0.1, GOP: mpeg.GOP{M: 1, N: 1}, Sizes: []int64{100000, 10}}
	s, err := Smooth(tr, Config{K: 1, H: 2, D: 0.21, Estimator: OracleEstimator{}})
	if err != nil {
		t.Fatal(err)
	}
	want := 100000 / (0.21 + 0 - 0.1)
	if math.Abs(s.Rates[0]-want) > 1e-6 {
		t.Fatalf("r_0 = %v, want %v (early exit, rate := lower)", s.Rates[0], want)
	}
}

// TestNormalExitHoldsRate: on a constant-size trace, the held rate can
// need at most a couple of corrections (the midpoint start rate is
// below the sustainable arrival rate, so the delay bound eventually
// forces one upward move); after settling it must be held bit-exactly.
func TestNormalExitHoldsRate(t *testing.T) {
	tr := flatTrace(40, 5000, 0.1)
	s, err := Smooth(tr, Config{K: 1, H: 1, D: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	changes := 0
	for j := 1; j < 40; j++ {
		if s.Rates[j] != s.Rates[j-1] {
			changes++
		}
	}
	if changes > 3 {
		t.Fatalf("%d rate changes on a constant trace", changes)
	}
	// The tail is exactly constant: held, not recomputed.
	for j := 21; j < 40; j++ {
		if s.Rates[j] != s.Rates[20] {
			t.Fatalf("tail rate changed at %d", j)
		}
	}
	// And the settled rate is the sustainable arrival rate, 50 kbps.
	if math.Abs(s.Rates[39]-50000) > 1 {
		t.Fatalf("settled rate %v, want ~50000", s.Rates[39])
	}
}

// TestFirstPictureMidpoint: r_0 on normal exit is (lower+upper)/2.
func TestFirstPictureMidpoint(t *testing.T) {
	// τ=0.1, K=1, H=1, D=0.3, S=1000:
	// t_0=0.1; lower = 1000/(0.3-0.1) = 5000; upper = 1000/(0.2-0.1) = 10000.
	tr := flatTrace(1, 1000, 0.1)
	s, err := Smooth(tr, Config{K: 1, H: 1, D: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Rates[0]-7500) > 1e-9 {
		t.Fatalf("r_0 = %v, want 7500", s.Rates[0])
	}
}

// TestLookaheadTruncatesAtSequenceEnd: with H far beyond the trace
// length the loop must stop at the last picture, not index past it.
func TestLookaheadTruncatesAtSequenceEnd(t *testing.T) {
	tr := flatTrace(3, 1000, 0.1)
	s, err := Smooth(tr, Config{K: 1, H: 50, D: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if v := s.CheckDelayBound(); v != -1 {
		t.Fatalf("delay bound violated at %d", v)
	}
	if v := s.CheckConservation(); v != -1 {
		t.Fatalf("conservation violated at %d", v)
	}
}

// TestMovingAverageUsesPatternSum: with the MovingAverage variant and
// all sizes known, the unclamped proposal is Σ/(Nτ).
func TestMovingAverageUsesPatternSum(t *testing.T) {
	// N=3, τ=0.1; sizes all 3000; pattern average = 9000/0.3 = 30000.
	// With a loose bound the proposal is never clamped after picture 0.
	sizes := make([]int64, 12)
	for i := range sizes {
		sizes[i] = 3000
	}
	tr := &trace.Trace{Name: "ma", Tau: 0.1, GOP: mpeg.GOP{M: 1, N: 3}, Sizes: sizes}
	s, err := Smooth(tr, Config{K: 1, H: 3, D: 1.0, Variant: MovingAverage, Estimator: OracleEstimator{}})
	if err != nil {
		t.Fatal(err)
	}
	// Near the sequence end the lookahead window truncates and the sum
	// covers fewer pictures, so only full windows see the pattern sum.
	for j := 3; j <= 12-3; j++ {
		if math.Abs(s.Rates[j]-30000) > 1e-6 {
			t.Fatalf("r_%d = %v, want pattern average 30000", j, s.Rates[j])
		}
	}
}

// TestK0FallbackRate: a K=0 run whose bound is hopeless must still make
// progress (the defensive rate fallback), transmitting every bit.
func TestK0FallbackRate(t *testing.T) {
	sizes := []int64{5_000_000, 1000, 1000}
	tr := &trace.Trace{Name: "k0", Tau: 0.1, GOP: mpeg.GOP{M: 1, N: 1}, Sizes: sizes}
	s, err := Smooth(tr, Config{K: 0, H: 1, D: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	for j, r := range s.Rates {
		if math.IsInf(r, 0) || math.IsNaN(r) || r <= 0 {
			t.Fatalf("rate %d degenerate: %v", j, r)
		}
	}
	if v := s.CheckConservation(); v != -1 {
		t.Fatalf("conservation violated at %d", v)
	}
}
