// Payload buffer pooling for the frame hot path. A saturated smoothd
// ingests tens of thousands of pictures per second; allocating a fresh
// payload buffer per frame makes the garbage collector a rate policer
// of its own. BufferPool recycles payload buffers across frames: the
// reader takes one sized to the announced picture, the server returns
// it after the decision step (egress sent, or duplicate dropped).
package transport

import "sync"

// maxPooledBuffers bounds how many idle buffers a pool retains; beyond
// this, Put drops the buffer for the collector. The bound keeps a burst
// of large pictures from pinning memory forever.
const maxPooledBuffers = 64

// BufferPool recycles picture payload buffers. It is a concrete
// mutex-guarded LIFO rather than a sync.Pool: payload lifetimes span
// goroutines (reader → decision → egress), which defeats sync.Pool's
// per-P caching, and a typed [][]byte freelist avoids boxing the slice
// header on every Put. The zero value is ready to use.
type BufferPool struct {
	mu   sync.Mutex
	free [][]byte
}

// Get returns a buffer with len == size. It prefers the most recently
// returned buffer whose capacity fits (top-down scan, swap-remove), so
// a steady stream of similar-sized pictures settles into a handful of
// buffers.
func (p *BufferPool) Get(size int) []byte {
	p.mu.Lock()
	for i := len(p.free) - 1; i >= 0; i-- {
		if cap(p.free[i]) >= size {
			b := p.free[i]
			last := len(p.free) - 1
			p.free[i] = p.free[last]
			p.free[last] = nil
			p.free = p.free[:last]
			p.mu.Unlock()
			return b[:size]
		}
	}
	p.mu.Unlock()
	return make([]byte, size)
}

// Put returns a buffer to the pool. Nil and zero-capacity buffers are
// ignored, as is everything past the retention bound.
func (p *BufferPool) Put(b []byte) {
	if cap(b) == 0 {
		return
	}
	p.mu.Lock()
	if len(p.free) < maxPooledBuffers {
		p.free = append(p.free, b[:0])
	}
	p.mu.Unlock()
}
