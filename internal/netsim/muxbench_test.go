package netsim

// The before/after benchmark of the event-engine rearchitecture, and
// the generator of the BENCH_netsim.json artifact (make muxbench). The
// workload is the thousand-stream statistical-multiplexing experiment;
// "before" is the seed heap-of-closures per-cell simulator kept in
// legacy_test.go, "after" is the timing-wheel engine in per-cell mode
// (same events, faster scheduler) and in fluid mode (the scale win:
// one event per rate segment instead of per cell).

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"testing"
	"time"

	"mpegsmooth/internal/metrics"
	"mpegsmooth/internal/trace"
)

var muxbenchOut = flag.String("muxbench-out", "", "write the mux scale benchmark artifact (JSON) to this file")

type scaleWorkload struct {
	cfg      RunConfig
	fluidCfg FluidConfig
	streams  int
	duration float64
}

// buildScaleWorkload assembles the 1000-source workload: a pool of
// distinct synthetic traces replicated with deterministic offsets over
// a shared link with 10% headroom. The same rate functions feed the
// per-cell and the fluid runs.
func buildScaleWorkload(tb testing.TB, pictures int) *scaleWorkload {
	tb.Helper()
	const nStreams = 1000
	const pool = 8
	var fns []*metrics.StepFunc
	var meanSum float64
	var duration float64
	for i := 0; i < pool; i++ {
		tr, err := trace.Generate(trace.SynthConfig{
			Name:  fmt.Sprintf("bench-%d", i),
			GOP:   mpegGOP(),
			IBase: 210_000, PBase: 95_000, BBase: 32_000,
			Scenes: []trace.ScenePhase{{Pictures: pictures, Complexity: 1, Motion: 0.9}},
			Seed:   int64(1000 + i),
		})
		if err != nil {
			tb.Fatal(err)
		}
		meanSum += tr.MeanRate()
		duration = tr.Duration()
		fns = append(fns, RawRateFunc(tb, tr))
	}
	rates := make([]*metrics.StepFunc, nStreams)
	offsets := make([]float64, nStreams)
	fluidStreams := make([]FluidStream, nStreams)
	for i := 0; i < nStreams; i++ {
		rates[i] = fns[i%pool]
		offsets[i] = float64(i%173) * 0.0217
		fluidStreams[i] = FluidStream{Rate: rates[i], Offset: offsets[i]}
	}
	link := meanSum / pool * nStreams * 1.1
	return &scaleWorkload{
		cfg: RunConfig{
			Rates: rates, Offsets: offsets, LinkRate: link, BufferCells: 2000,
		},
		fluidCfg: FluidConfig{
			Streams: fluidStreams, LinkRate: link, BufferCells: 2000,
		},
		streams:  nStreams,
		duration: duration,
	}
}

type benchSection struct {
	Events       int64   `json:"events"`
	Seconds      float64 `json:"seconds"`
	EventsPerSec float64 `json:"events_per_sec"`
}

func section(events int64, d time.Duration) benchSection {
	return benchSection{
		Events:       events,
		Seconds:      d.Seconds(),
		EventsPerSec: float64(events) / d.Seconds(),
	}
}

// muxBenchArtifact is the BENCH_netsim.json schema.
type muxBenchArtifact struct {
	Workload struct {
		Streams     int     `json:"streams"`
		DurationSec float64 `json:"trace_duration_s"`
		Cells       int64   `json:"cells"`
	} `json:"workload"`
	// SeedScheduler: the pre-rearchitecture float-time event heap
	// running the per-cell workload.
	SeedScheduler benchSection `json:"seed_scheduler"`
	// EngineCell: the timing-wheel engine running the identical
	// per-cell workload (same event count, exact same MuxStats).
	EngineCell benchSection `json:"engine_cell"`
	// EngineFluid: the timing-wheel engine running the same workload in
	// batched fluid mode; EquivalentEventsPerSec is the seed per-cell
	// event count divided by the fluid wall time — the throughput at
	// which the rearchitecture disposes of the seed scheduler's work.
	EngineFluid struct {
		benchSection
		EquivalentEventsPerSec float64 `json:"equivalent_events_per_sec"`
	} `json:"engine_fluid"`
	// Speedups over the seed scheduler on the same workload.
	SpeedupCell  float64 `json:"speedup_cell"`
	SpeedupFluid float64 `json:"speedup_fluid"`
}

// TestMuxBenchArtifact measures the seed scheduler against the new
// engine on the 1000-source workload and (with -muxbench-out) writes
// BENCH_netsim.json. In -short mode the traces are cut down so the run
// fits CI; the stream count stays at 1000.
func TestMuxBenchArtifact(t *testing.T) {
	if *muxbenchOut == "" {
		t.Skip("artifact generator; run via make muxbench (-muxbench-out)")
	}
	pictures := 135
	if testing.Short() {
		pictures = 36
	}
	w := buildScaleWorkload(t, pictures)

	start := time.Now()
	legacy, err := legacyRun(w.cfg)
	if err != nil {
		t.Fatal(err)
	}
	legacyTime := time.Since(start)

	start = time.Now()
	cell, err := RunDetailed(w.cfg)
	if err != nil {
		t.Fatal(err)
	}
	cellTime := time.Since(start)
	if cell.MuxStats != legacy.MuxStats {
		t.Fatalf("engine does not reproduce seed stats:\n new %+v\n old %+v", cell.MuxStats, legacy.MuxStats)
	}

	start = time.Now()
	fluid, err := RunFluid(w.fluidCfg)
	if err != nil {
		t.Fatal(err)
	}
	fluidTime := time.Since(start)

	var art muxBenchArtifact
	art.Workload.Streams = w.streams
	art.Workload.DurationSec = w.duration
	art.Workload.Cells = legacy.Arrived
	art.SeedScheduler = section(int64(legacy.Events), legacyTime)
	art.EngineCell = section(int64(legacy.Events), cellTime)
	art.EngineFluid.benchSection = section(int64(fluid.Events), fluidTime)
	art.EngineFluid.EquivalentEventsPerSec = float64(legacy.Events) / fluidTime.Seconds()
	art.SpeedupCell = legacyTime.Seconds() / cellTime.Seconds()
	art.SpeedupFluid = legacyTime.Seconds() / fluidTime.Seconds()

	t.Logf("seed scheduler: %d events in %v (%.2e ev/s)", legacy.Events, legacyTime, art.SeedScheduler.EventsPerSec)
	t.Logf("engine (cell):  %d events in %v (%.2fx)", legacy.Events, cellTime, art.SpeedupCell)
	t.Logf("engine (fluid): %d events in %v (%.2fx, %.2e equivalent ev/s)",
		fluid.Events, fluidTime, art.SpeedupFluid, art.EngineFluid.EquivalentEventsPerSec)

	if art.SpeedupFluid < 10 {
		t.Errorf("fluid engine speedup %.1fx below the 10x floor", art.SpeedupFluid)
	}

	data, err := json.MarshalIndent(&art, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(*muxbenchOut, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkMuxScale times the fluid engine on the 1000-source workload
// (the headline number: one iteration disposes of what the seed
// scheduler handled as millions of per-cell events).
func BenchmarkMuxScale(b *testing.B) {
	w := buildScaleWorkload(b, 36)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunFluid(w.fluidCfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMuxScaleSeed is the before picture: the seed heap scheduler
// on the same workload, per cell.
func BenchmarkMuxScaleSeed(b *testing.B) {
	w := buildScaleWorkload(b, 36)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := legacyRun(w.cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMuxScaleCell is the new engine on the same per-cell workload
// — the scheduler swap alone, batching excluded.
func BenchmarkMuxScaleCell(b *testing.B) {
	w := buildScaleWorkload(b, 36)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(w.cfg); err != nil {
			b.Fatal(err)
		}
	}
}
