// Package faultnet wraps net.Conn and net.Listener with deterministic,
// seed-driven fault injection: byte corruption, mid-message stalls,
// latency/jitter, abrupt resets, and timed partitions. It exists so the
// transport layer's robustness claims — CRC-detected corruption,
// deadline-cut stalls, resumable streams through resets — can be
// exercised in ordinary Go tests against a real TCP (or in-memory)
// network rather than hand-mocked error returns.
//
// Determinism: every connection accepted or wrapped gets its own
// math/rand stream seeded from Config.Seed plus the connection's accept
// index, so a chaos soak replays the same fault sequence per connection
// regardless of goroutine interleaving.
package faultnet

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// ErrInjectedReset is returned by a connection the harness abruptly
// reset. It also closes the underlying conn, so the peer observes a
// genuine EOF/reset. It wraps ECONNRESET so fault classifiers treat it
// exactly like the real thing.
var ErrInjectedReset = fmt.Errorf("faultnet: injected connection reset: %w", syscall.ECONNRESET)

// ErrPartitioned is returned while the network is partitioned.
var ErrPartitioned = errors.New("faultnet: network partitioned")

// Config sets the fault mix. Probabilities are per I/O operation
// (per Read and per Write call), evaluated independently.
type Config struct {
	// Seed drives all randomness. The same seed and per-connection
	// operation sequence replays the same faults.
	Seed int64
	// CorruptProb flips one byte of the transferred data.
	CorruptProb float64
	// ResetProb abruptly closes the connection mid-operation.
	ResetProb float64
	// StallProb pauses the operation for Stall before proceeding —
	// long stalls trip peer deadlines, short ones add burstiness.
	StallProb float64
	// Stall is the pause injected on a stall fault (default 50ms).
	Stall time.Duration
	// Latency delays every operation; Jitter adds a uniform random
	// extra in [0, Jitter).
	Latency time.Duration
	Jitter  time.Duration
	// FaultFreeBytes exempts the first N bytes of each direction of each
	// connection from corruption and resets (latency still applies).
	// Chaos tests use it to protect the admission handshake so faults
	// concentrate on the picture stream.
	FaultFreeBytes int
}

// Counts reports the faults a Network has injected so far.
type Counts struct {
	Corrupted  int64
	Resets     int64
	Stalls     int64
	Partitions int64
}

// Network is a fault-injecting wrapper factory. The zero value with a
// zero Config passes traffic through untouched.
type Network struct {
	cfg Config

	connIndex atomic.Int64

	corrupted atomic.Int64
	resets    atomic.Int64
	stalls    atomic.Int64
	partials  atomic.Int64

	mu          sync.Mutex
	partitioned bool
	partTimer   *time.Timer
}

// New builds a Network with the given fault mix.
func New(cfg Config) *Network {
	if cfg.Stall <= 0 {
		cfg.Stall = 50 * time.Millisecond
	}
	return &Network{cfg: cfg}
}

// Counts snapshots the injected-fault counters.
func (n *Network) Counts() Counts {
	return Counts{
		Corrupted:  n.corrupted.Load(),
		Resets:     n.resets.Load(),
		Stalls:     n.stalls.Load(),
		Partitions: n.partials.Load(),
	}
}

// PartitionFor severs every connection's traffic for d: operations fail
// immediately with ErrPartitioned until the window elapses. Overlapping
// calls extend the window.
func (n *Network) PartitionFor(d time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.partials.Add(1)
	n.partitioned = true
	if n.partTimer != nil {
		n.partTimer.Stop()
	}
	n.partTimer = time.AfterFunc(d, func() {
		n.mu.Lock()
		n.partitioned = false
		n.mu.Unlock()
	})
}

func (n *Network) isPartitioned() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.partitioned
}

// Wrap returns conn with this network's faults injected on both its
// read and write paths.
func (n *Network) Wrap(conn net.Conn) net.Conn {
	seed := n.cfg.Seed + n.connIndex.Add(1)
	return &faultConn{
		Conn: conn,
		net:  n,
		read: dirState{rng: rand.New(rand.NewSource(seed))},
		// Writes draw from an offset stream so the two directions fault
		// independently but still deterministically.
		write: dirState{rng: rand.New(rand.NewSource(seed ^ 0x5DEECE66D))},
	}
}

// Listener wraps l so every accepted connection is fault-injected.
func (n *Network) Listener(l net.Listener) net.Listener {
	return &faultListener{Listener: l, net: n}
}

type faultListener struct {
	net.Listener
	net *Network
}

func (fl *faultListener) Accept() (net.Conn, error) {
	conn, err := fl.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return fl.net.Wrap(conn), nil
}

// dirState is one direction's fault-decision state. Its RNG is only
// touched under the parent conn's mutex.
type dirState struct {
	rng   *rand.Rand
	bytes int // transferred so far, for the FaultFreeBytes grace
}

type faultConn struct {
	net.Conn
	net   *Network
	mu    sync.Mutex
	read  dirState
	write dirState
	reset bool
}

// decide rolls this operation's faults under the conn mutex so the RNG
// stream is well-defined, returning the actions to take outside it.
func (fc *faultConn) decide(dir *dirState, size int) (stall, reset bool, corruptAt int) {
	cfg := &fc.net.cfg
	fc.mu.Lock()
	defer fc.mu.Unlock()
	corruptAt = -1
	if fc.reset {
		return false, true, -1
	}
	if cfg.StallProb > 0 && dir.rng.Float64() < cfg.StallProb {
		stall = true
	}
	inGrace := dir.bytes < cfg.FaultFreeBytes
	if !inGrace {
		if cfg.ResetProb > 0 && dir.rng.Float64() < cfg.ResetProb {
			fc.reset = true
			return stall, true, -1
		}
		if size > 0 && cfg.CorruptProb > 0 && dir.rng.Float64() < cfg.CorruptProb {
			corruptAt = dir.rng.Intn(size)
		}
	}
	dir.bytes += size
	return stall, false, corruptAt
}

func (fc *faultConn) jitter(dir *dirState) time.Duration {
	cfg := &fc.net.cfg
	d := cfg.Latency
	if cfg.Jitter > 0 {
		fc.mu.Lock()
		d += time.Duration(dir.rng.Int63n(int64(cfg.Jitter)))
		fc.mu.Unlock()
	}
	return d
}

// pre applies the pre-operation faults (partition, latency, stall,
// reset) shared by both directions.
func (fc *faultConn) pre(dir *dirState, size int) (corruptAt int, err error) {
	if fc.net.isPartitioned() {
		return -1, ErrPartitioned
	}
	if d := fc.jitter(dir); d > 0 {
		time.Sleep(d)
	}
	stall, reset, corruptAt := fc.decide(dir, size)
	if stall {
		fc.net.stalls.Add(1)
		time.Sleep(fc.net.cfg.Stall)
	}
	if reset {
		fc.net.resets.Add(1)
		fc.Conn.Close()
		return -1, ErrInjectedReset
	}
	return corruptAt, nil
}

func (fc *faultConn) Read(p []byte) (int, error) {
	// The fault decision must size-bound the corruption offset, but the
	// eventual read may be shorter; re-check after the read.
	corruptAt, err := fc.pre(&fc.read, len(p))
	if err != nil {
		return 0, err
	}
	n, err := fc.Conn.Read(p)
	if corruptAt >= 0 && corruptAt < n {
		p[corruptAt] ^= 0xFF
		fc.net.corrupted.Add(1)
	}
	return n, err
}

func (fc *faultConn) Write(p []byte) (int, error) {
	corruptAt, err := fc.pre(&fc.write, len(p))
	if err != nil {
		return 0, err
	}
	if corruptAt >= 0 && corruptAt < len(p) {
		// Corrupt a copy: the caller's buffer is not ours to damage.
		q := make([]byte, len(p))
		copy(q, p)
		q[corruptAt] ^= 0xFF
		fc.net.corrupted.Add(1)
		return fc.Conn.Write(q)
	}
	return fc.Conn.Write(p)
}
