package bitio

import (
	"errors"
	"fmt"
)

// StartCodePrefix is the 24-bit pattern 0x000001 that begins every MPEG
// start code. The fourth byte identifies the start-code type.
const StartCodePrefix = 0x000001

// Writer accumulates bits MSB-first into an in-memory buffer.
//
// The zero value is not usable; call NewWriter.
type Writer struct {
	buf  []byte
	cur  uint64 // bits accumulated, left-justified within nbits
	nb   uint   // number of valid bits in cur (0..7 between flushes)
	bits int64  // total bits written
}

// NewWriter returns an empty bit writer.
func NewWriter() *Writer {
	return &Writer{buf: make([]byte, 0, 4096)}
}

// WriteBits writes the low n bits of v, MSB first. n must be in [0, 32].
func (w *Writer) WriteBits(v uint32, n uint) {
	if n > 32 {
		panic(fmt.Sprintf("bitio: WriteBits n=%d out of range", n))
	}
	if n == 0 {
		return
	}
	v &= mask32(n)
	w.bits += int64(n)
	// Accumulate into cur (at most 7 leftover + 32 new = 39 bits, fits u64).
	w.cur = w.cur<<n | uint64(v)
	w.nb += n
	for w.nb >= 8 {
		w.nb -= 8
		w.buf = append(w.buf, byte(w.cur>>w.nb))
	}
	w.cur &= (1 << w.nb) - 1
}

// WriteBit writes a single bit (0 or 1).
func (w *Writer) WriteBit(b uint32) { w.WriteBits(b&1, 1) }

// Aligned reports whether the writer is at a byte boundary.
func (w *Writer) Aligned() bool { return w.nb == 0 }

// Align pads with zero bits to the next byte boundary. It returns the
// number of stuffing bits written (0..7). MPEG uses zero-bit stuffing
// before every start code.
func (w *Writer) Align() uint {
	pad := (8 - w.nb) % 8
	if pad > 0 {
		w.WriteBits(0, pad)
	}
	return pad
}

// WriteStartCode byte-aligns the stream and writes the 32-bit start code
// 0x000001<code>.
func (w *Writer) WriteStartCode(code byte) {
	w.Align()
	w.WriteBits(StartCodePrefix, 24)
	w.WriteBits(uint32(code), 8)
}

// StuffBytes writes n zero-stuffing bytes (must be byte aligned).
// MPEG permits any number of zero bytes before a start code.
func (w *Writer) StuffBytes(n int) error {
	if !w.Aligned() {
		return errors.New("bitio: StuffBytes on unaligned writer")
	}
	for i := 0; i < n; i++ {
		w.buf = append(w.buf, 0)
	}
	w.bits += int64(n) * 8
	return nil
}

// BitsWritten returns the total number of bits written, including any
// pending unflushed bits.
func (w *Writer) BitsWritten() int64 { return w.bits }

// Bytes byte-aligns the writer and returns the accumulated buffer.
// The returned slice aliases the writer's internal storage.
func (w *Writer) Bytes() []byte {
	w.Align()
	return w.buf
}

// Len returns the current length in whole bytes after alignment of the
// pending bits would occur (i.e. ceil(bits/8)).
func (w *Writer) Len() int {
	n := len(w.buf)
	if w.nb > 0 {
		n++
	}
	return n
}

// Reset discards all written data, retaining the allocated buffer.
func (w *Writer) Reset() {
	w.buf = w.buf[:0]
	w.cur = 0
	w.nb = 0
	w.bits = 0
}

func mask32(n uint) uint32 {
	if n >= 32 {
		return ^uint32(0)
	}
	return (1 << n) - 1
}
