// Livepipe: carry a smoothed video stream over a real connection.
//
// A sender smooths the Tennis trace (K=1: only one picture of lookahead
// is ever buffered for the guarantee) and paces each picture's bytes at
// the scheduled rate r_i over a TCP loopback connection, emitting
// notify(i, rate) messages at every rate change. The receiver verifies
// integrity and reports what it observed. The 9-second schedule is
// replayed at 20x so the example finishes in under half a second.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"net"
	"time"

	"mpegsmooth"
)

func main() {
	tr, err := mpegsmooth.Tennis(135, 7)
	if err != nil {
		log.Fatal(err)
	}
	sched, err := mpegsmooth.Smooth(tr, mpegsmooth.Config{K: 1, H: tr.GOP.N, D: 0.2})
	if err != nil {
		log.Fatal(err)
	}

	// Synthesize picture payloads of the traced sizes.
	rng := rand.New(rand.NewSource(1))
	payloads := make([][]byte, tr.Len())
	sums := make([]uint64, tr.Len())
	for i, bits := range tr.Sizes {
		payloads[i] = make([]byte, (bits+7)/8)
		rng.Read(payloads[i])
		sums[i] = mpegsmooth.PayloadSum64(payloads[i])
	}

	// TCP loopback.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			log.Fatal(err)
		}
		accepted <- c
	}()
	client, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	server := <-accepted
	defer server.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	start := time.Now()
	go func() {
		sender := &mpegsmooth.Sender{TimeScale: 20}
		if err := sender.Send(ctx, mpegsmooth.NewFrameWriter(client), sched, payloads); err != nil {
			log.Fatalf("send: %v", err)
		}
	}()

	report, err := mpegsmooth.Receive(ctx, server)
	if err != nil {
		log.Fatalf("receive: %v", err)
	}
	elapsed := time.Since(start)

	corrupted := 0
	for _, p := range report.Pictures {
		if p.Sum64 != sums[p.Index] {
			corrupted++
		}
	}
	fmt.Printf("received %d/%d pictures (%d bytes) in %v at 20x timescale\n",
		len(report.Pictures), tr.Len(), report.TotalBytes(), elapsed.Round(time.Millisecond))
	fmt.Printf("rate notifications observed: %d (schedule had %d rate changes)\n",
		len(report.Notifications), countChanges(sched.Rates))
	fmt.Printf("payload integrity: %d corrupted\n", corrupted)
	last := report.Pictures[len(report.Pictures)-1]
	fmt.Printf("last picture arrived %.3fs (schedule predicted %.3fs at 20x)\n",
		last.Arrival.Seconds(), sched.Depart[tr.Len()-1]/20)
}

func countChanges(rates []float64) int {
	n := 1
	for i := 1; i < len(rates); i++ {
		if rates[i] != rates[i-1] {
			n++
		}
	}
	return n
}
