package core

import (
	"math"
	"testing"

	"mpegsmooth/internal/mpeg"
	"mpegsmooth/internal/trace"
)

func TestOfflineFlatTraceIsOneSegment(t *testing.T) {
	// A constant-size trace admits a single constant-rate line: the taut
	// string should have (almost) no rate changes and rate equal to the
	// long-run mean.
	tr := flatTrace(60, 30_000, 0.1)
	o, err := OfflineSmooth(tr, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if v := o.CheckDelayBound(); v != -1 {
		t.Fatalf("delay bound violated at %d (%.4f)", v, o.Delays[v])
	}
	if v := o.CheckCausality(); v != -1 {
		t.Fatalf("causality violated at %d", v)
	}
	if ch := o.RateChanges(); ch > 2 {
		t.Errorf("flat trace taut string has %d rate changes", ch)
	}
	// Long-run slope ~ mean rate.
	if peak := o.PeakRate(); math.Abs(peak-300_000) > 30_000 {
		t.Errorf("peak rate %.0f, want about 300000", peak)
	}
}

func TestOfflineSatisfiesConstraintsOnPaperTrace(t *testing.T) {
	tr := paperTrace(t, 270)
	for _, D := range []float64{1.0 / 30 * 2, 0.1, 0.2, 0.5} {
		o, err := OfflineSmooth(tr, D)
		if err != nil {
			t.Fatalf("D=%v: %v", D, err)
		}
		if v := o.CheckDelayBound(); v != -1 {
			t.Errorf("D=%v: delay bound violated at %d (%.4f)", D, v, o.Delays[v])
		}
		if v := o.CheckCausality(); v != -1 {
			t.Errorf("D=%v: causality violated at %d (departs %.4f < arrival %.4f)",
				D, v, o.Depart[v], float64(v+1)*tr.Tau)
		}
		// Monotone non-decreasing cumulative curve.
		for k := 1; k < len(o.VertexBits); k++ {
			if o.VertexBits[k] < o.VertexBits[k-1]-1e-6 {
				t.Fatalf("D=%v: cumulative curve decreases at vertex %d", D, k)
			}
			if o.VertexT[k] <= o.VertexT[k-1] {
				t.Fatalf("D=%v: vertex times not increasing at %d", D, k)
			}
		}
		// All bits transmitted.
		total := o.VertexBits[len(o.VertexBits)-1]
		if math.Abs(total-float64(tr.TotalBits())) > 1 {
			t.Errorf("D=%v: transmitted %.0f of %d bits", D, total, tr.TotalBits())
		}
	}
}

func TestOfflinePeakBeatsOnline(t *testing.T) {
	// The offline optimum (all sizes known) must achieve a peak rate no
	// worse than the online algorithm at the same delay bound.
	tr := paperTrace(t, 270)
	D := 0.2
	o, err := OfflineSmooth(tr, D)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Smooth(tr, Config{K: 1, H: tr.GOP.N, D: D})
	if err != nil {
		t.Fatal(err)
	}
	f, err := s.RateFunc()
	if err != nil {
		t.Fatal(err)
	}
	if o.PeakRate() > f.Max()*(1+1e-9) {
		t.Errorf("offline peak %.0f exceeds online peak %.0f", o.PeakRate(), f.Max())
	}
}

func TestOfflineRelaxingDLowersPeak(t *testing.T) {
	tr := paperTrace(t, 270)
	var prev float64 = math.Inf(1)
	for _, D := range []float64{0.0667, 0.1333, 0.2667, 0.5333} {
		o, err := OfflineSmooth(tr, D)
		if err != nil {
			t.Fatal(err)
		}
		pk := o.PeakRate()
		if pk > prev*(1+1e-9) {
			t.Errorf("D=%v: peak %.0f higher than with tighter bound %.0f", D, pk, prev)
		}
		prev = pk
	}
}

func TestOfflineTinyHandCase(t *testing.T) {
	// Two pictures, τ=1, D=2, sizes 10 and 10.
	// Ceilings: X(1) <= 0, X(2) <= 10 (t=2 also deadline of picture 0: X >= 10).
	// So X(2) = 10 exactly. Deadline picture 1: X(3) >= 20, end (t=3) pinned at 20.
	// Taut string: (0,0) -> (2,10) -> (3,20)? The straight line from (0,0)
	// to (3,20) passes X(1) = 6.67 > ceiling 0 at t=1, so the path must
	// bend: (0,0)..(1,0) flat, then up. From (1,0) to (3,20): X(2)=10 ✓
	// exactly on both ceiling and floor. One line of slope 10 from t=1.
	tr := &trace.Trace{Name: "2pix", Tau: 1, GOP: mpeg.GOP{M: 1, N: 1}, Sizes: []int64{10, 10}}
	o, err := OfflineSmooth(tr, 2)
	if err != nil {
		t.Fatal(err)
	}
	if v := o.CheckDelayBound(); v != -1 {
		t.Fatalf("delay bound violated at %d", v)
	}
	if v := o.CheckCausality(); v != -1 {
		t.Fatalf("causality violated at %d", v)
	}
	f, err := o.RateFunc()
	if err != nil {
		t.Fatal(err)
	}
	if got := f.At(0.5); got != 0 {
		t.Errorf("rate before first arrival = %v, want 0", got)
	}
	if got := f.At(1.5); math.Abs(got-10) > 1e-9 {
		t.Errorf("rate after bend = %v, want 10", got)
	}
	if got := f.At(2.5); math.Abs(got-10) > 1e-9 {
		t.Errorf("rate in second half = %v, want 10", got)
	}
}

func TestOfflineRejectsBadInput(t *testing.T) {
	tr := flatTrace(5, 100, 0.1)
	if _, err := OfflineSmooth(tr, 0.05); err == nil {
		t.Error("D < tau should fail")
	}
	bad := &trace.Trace{Name: "bad", Tau: 0.1, GOP: mpeg.GOP{M: 1, N: 1}, Sizes: nil}
	if _, err := OfflineSmooth(bad, 1); err == nil {
		t.Error("invalid trace should fail")
	}
}
