package mpegsmooth

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"os"
	"strings"

	"mpegsmooth/internal/core"
	"mpegsmooth/internal/netsim"
	"mpegsmooth/internal/server"
	"mpegsmooth/internal/trace"
	"mpegsmooth/internal/transport"
	"mpegsmooth/internal/vbv"
)

// Network-facing re-exports: the finite-buffer multiplexer simulator
// (the paper's statistical-multiplexing motivation) and the paced
// transport (the notify(i, rate) contract over a real connection).
type (
	// MuxRunConfig describes one multiplexing simulation.
	MuxRunConfig = netsim.RunConfig
	// MuxStats counts cells through the multiplexer.
	MuxStats = netsim.MuxStats
	// MuxRunResult is MuxStats plus per-source emission/loss counts.
	MuxRunResult = netsim.RunResult
	// MuxSourceStats counts one source's cells through the multiplexer.
	MuxSourceStats = netsim.SourceStats

	// FluidConfig describes one batched fluid multiplexing simulation:
	// the mode that scales to thousands of streams by accounting cells
	// analytically between rate-change events.
	FluidConfig = netsim.FluidConfig
	// FluidStream is one stream of a fluid simulation (rate function,
	// start offset, optional bandwidth-limiting shaper).
	FluidStream = netsim.FluidStream
	// FluidResult is the analytic outcome of a fluid simulation.
	FluidResult = netsim.FluidResult
	// FluidSourceStats is one stream's fluid cell accounting.
	FluidSourceStats = netsim.FluidSourceStats
	// ShaperConfig parameterizes a limited-bandwidth connection: a
	// dual-rate token-bucket shaper that delays (rather than drops)
	// traffic exceeding its sustained/peak contract.
	ShaperConfig = netsim.ShaperConfig

	// OnOffParetoConfig parameterizes a seeded long-range-dependent
	// on/off background traffic source.
	OnOffParetoConfig = trace.OnOffParetoConfig

	// Sender paces a smoothed schedule over a connection.
	Sender = transport.Sender
	// Report summarizes a transport receive session.
	Report = transport.Report
	// ReceivedPicture records one picture at the receiver.
	ReceivedPicture = transport.ReceivedPicture
	// RateNotification is the notify(i, rate) wire message.
	RateNotification = transport.RateNotification

	// Receiver is the configurable receive loop (read deadlines for
	// stalled senders); the zero value matches Receive.
	Receiver = transport.Receiver
	// FrameWriter frames outbound messages with CRC32 checksums and
	// per-connection sequence numbers; one per connection write side.
	FrameWriter = transport.FrameWriter
	// FrameReader unframes and verifies inbound messages; one per
	// connection read side.
	FrameReader = transport.FrameReader
	// StreamHello opens a stream session with a smoothd server: the
	// declared encoding parameters and peak smoothed rate.
	StreamHello = transport.StreamHello
	// StreamResume reopens a disconnected stream session by its token.
	StreamResume = transport.StreamResume
	// Verdict is the server's admission answer to a StreamHello or
	// StreamResume.
	Verdict = transport.Verdict
	// VerdictCode classifies an admission decision.
	VerdictCode = transport.VerdictCode

	// ResumableSender is the reconnect-and-resume streaming loop: dial,
	// handshake, pace, and on a transient fault redial with jittered
	// exponential backoff and replay from the server's NextIndex.
	ResumableSender = transport.ResumableSender
	// Backoff shapes the reconnect delays.
	Backoff = transport.Backoff
	// ResumeEvent reports one reconnect-loop transition.
	ResumeEvent = transport.ResumeEvent
	// StreamResult summarizes a resumable stream session.
	StreamResult = transport.StreamResult
	// FaultClass buckets transport failures (corrupt, timeout, reset).
	FaultClass = transport.FaultClass
	// IntegrityMode selects the prefix-verification hash a stream
	// session negotiates in its hello (FNV-1a by default, or keyed
	// HMAC-SHA256 for senders that must not trust the path).
	IntegrityMode = transport.IntegrityMode

	// DatagramConfig tunes the selective-repeat ARQ layer that presents
	// a lossy packet channel as a reliable ordered connection.
	DatagramConfig = transport.DatagramConfig
	// DGConn is one ARQ flow: a net.Conn whose bytes ride sequenced,
	// CRC-framed, selectively-acknowledged datagrams.
	DGConn = transport.DGConn
	// DGStats counts one ARQ flow's packet-level events.
	DGStats = transport.DGStats
	// DatagramListener accepts ARQ flows demultiplexed from a single
	// packet socket, presented as a net.Listener.
	DatagramListener = transport.DatagramListener

	// Policer is a token-bucket usage-parameter-control element that
	// checks traffic against its declared rates.
	Policer = netsim.Policer
	// Admission is a peak-rate admission controller for a shared link:
	// the lossless analogue of the paper's multiplexing experiment.
	Admission = netsim.Admission

	// Smoothd is the multi-stream smoothing server: admission control,
	// one smoothing session per stream, shared paced egress, and an
	// operations endpoint.
	Smoothd = server.Server
	// SmoothdConfig parameterizes a Smoothd server.
	SmoothdConfig = server.Config
	// SmoothdSnapshot is the ops view of a running server.
	SmoothdSnapshot = server.Snapshot
	// SmoothdStreamCounts are the admission/lifecycle counters.
	SmoothdStreamCounts = server.StreamCounts
	// SmoothdStreamSnapshot is the ops view of one stream.
	SmoothdStreamSnapshot = server.StreamSnapshot

	// VBVAnalysis reports the decoder-side buffering a schedule demands:
	// minimum start-up delay (= the schedule's maximum picture delay,
	// which Theorem 1 bounds by D) and peak buffer occupancy.
	VBVAnalysis = vbv.Analysis
)

// CellBits is the fixed cell size of the multiplexer model (ATM: 53
// bytes).
const CellBits = netsim.CellBits

// Admission verdict codes.
const (
	// StreamAdmitted: the declared peak has been reserved; stream away.
	StreamAdmitted = transport.Admitted
	// StreamRejectedCapacity: the declared peak does not fit in the
	// link capacity still available.
	StreamRejectedCapacity = transport.RejectedCapacity
	// StreamRejectedMalformed: the hello was missing or invalid.
	StreamRejectedMalformed = transport.RejectedMalformed
	// StreamRejectedBusy: stream limit reached or server draining.
	StreamRejectedBusy = transport.RejectedBusy
	// StreamAlreadyComplete: the resumed stream had already been fully
	// accepted; the verdict carries the final watermark and prefix hash
	// so the sender can confirm byte-exact delivery despite a lost ack.
	StreamAlreadyComplete = transport.AlreadyComplete
)

// Prefix-integrity modes (see IntegrityMode).
const (
	// IntegrityFNV: FNV-1a over the accepted prefix — fast corruption
	// detection, the wire-format default.
	IntegrityFNV = transport.IntegrityFNV
	// IntegrityHMAC: chained HMAC-SHA256 under a shared key — prefix
	// verification an on-path attacker cannot forge.
	IntegrityHMAC = transport.IntegrityHMAC
)

// Fault classes (see ClassifyFault).
const (
	// FaultNone: no fault (orderly close or nil error).
	FaultNone = transport.FaultNone
	// FaultCorrupt: CRC mismatch, sequence discontinuity, or nonsense
	// field values — the wire cannot be trusted.
	FaultCorrupt = transport.FaultCorrupt
	// FaultTimeout: a read or write deadline expired.
	FaultTimeout = transport.FaultTimeout
	// FaultReset: the connection dropped or was truncated mid-message.
	FaultReset = transport.FaultReset
	// FaultReorderOverflow: a datagram flow's reassembly window
	// overflowed — displacement beyond what the ARQ can absorb.
	FaultReorderOverflow = transport.FaultReorderOverflow
	// FaultRetransmitExhausted: a datagram went unacknowledged through
	// the whole retransmission schedule — the packet channel is dead.
	FaultRetransmitExhausted = transport.FaultRetransmitExhausted
	// FaultStaleDuplicate: traffic from a previous flow incarnation
	// contradicted the current one.
	FaultStaleDuplicate = transport.FaultStaleDuplicate
	// FaultOther: anything else; terminal, never retried.
	FaultOther = transport.FaultOther
)

// RunMux simulates rate-scheduled sources through a shared finite-buffer
// multiplexer and returns loss statistics.
func RunMux(cfg MuxRunConfig) (MuxStats, error) { return netsim.Run(cfg) }

// RunMuxDetailed is RunMux plus per-source emission and loss counts.
func RunMuxDetailed(cfg MuxRunConfig) (MuxRunResult, error) { return netsim.RunDetailed(cfg) }

// RunMuxFluid simulates streams through a shared finite-buffer
// multiplexer in batched fluid mode: event count scales with rate
// breakpoints rather than cells, so thousands of streams are practical.
func RunMuxFluid(cfg FluidConfig) (*FluidResult, error) { return netsim.RunFluid(cfg) }

// OnOffPareto generates the rate function of a seeded on/off background
// source with truncated-Pareto sojourn times; superpositions of such
// sources exhibit the long-range dependence of real network traffic.
func OnOffPareto(cfg OnOffParetoConfig) (*StepFunc, error) { return trace.OnOffPareto(cfg) }

// Receive drains a sender's stream until its end marker, recording
// per-picture arrival times, integrity hashes, and rate notifications.
func Receive(ctx context.Context, conn io.Reader) (*Report, error) {
	return transport.Receive(ctx, conn)
}

// PayloadSum64 is the integrity hash the receiver records per picture.
func PayloadSum64(payload []byte) uint64 { return transport.PayloadSum64(payload) }

// NewPolicer creates a token-bucket policer with the given burst
// tolerance in bits.
func NewPolicer(burstBits float64) (*Policer, error) { return netsim.NewPolicer(burstBits) }

// NewAdmission creates a peak-rate admission controller for a link of
// the given capacity in bits/second.
func NewAdmission(capacity float64) (*Admission, error) { return netsim.NewAdmission(capacity) }

// NewSmoothd validates the configuration and prepares a smoothd server;
// drive it with Serve and stop it with Shutdown.
func NewSmoothd(cfg SmoothdConfig) (*Smoothd, error) { return server.New(cfg) }

// NewFrameWriter wraps a connection's write side in the CRC-framed wire
// protocol; the same writer must carry the handshake and the stream.
func NewFrameWriter(w io.Writer) *FrameWriter { return transport.NewFrameWriter(w) }

// NewFrameReader wraps a connection's read side in the CRC-framed wire
// protocol.
func NewFrameReader(r io.Reader) *FrameReader { return transport.NewFrameReader(r) }

// ClassifyFault buckets a transport error into a FaultClass for
// accounting and retry policy.
func ClassifyFault(err error) FaultClass { return transport.ClassifyFault(err) }

// NewDatagramClientConn runs a selective-repeat ARQ flow over a
// connected packet conn (one datagram per Write), presenting it as a
// reliable ordered net.Conn with deadline support.
func NewDatagramClientConn(pc net.Conn, cfg DatagramConfig) *DGConn {
	return transport.NewDatagramClientConn(pc, cfg)
}

// DialDatagram opens a UDP socket to addr and starts an ARQ flow on it.
func DialDatagram(addr string, cfg DatagramConfig) (*DGConn, error) {
	return transport.DialDatagram(addr, cfg)
}

// ListenDatagram demultiplexes ARQ flows arriving on one packet socket
// into accepted connections: the datagram counterpart of a TCP
// listener, so a smoothd server can serve lossy packet channels with
// the stream protocol unchanged.
func ListenDatagram(pc net.PacketConn, cfg DatagramConfig) *DatagramListener {
	return transport.ListenDatagram(pc, cfg)
}

// ParseIntegrity parses an -integrity flag value: "fnv" (the default,
// no key) or "hmac-sha256:<keyfile>", reading the shared key from the
// named file with surrounding whitespace trimmed.
func ParseIntegrity(spec string) (IntegrityMode, []byte, error) {
	switch {
	case spec == "" || spec == "fnv":
		return IntegrityFNV, nil, nil
	case strings.HasPrefix(spec, "hmac-sha256:"):
		path := strings.TrimPrefix(spec, "hmac-sha256:")
		if path == "" {
			return 0, nil, fmt.Errorf("mpegsmooth: integrity mode hmac-sha256 needs a keyfile: hmac-sha256:<keyfile>")
		}
		key, err := os.ReadFile(path)
		if err != nil {
			return 0, nil, fmt.Errorf("mpegsmooth: reading integrity key: %w", err)
		}
		key = bytes.TrimSpace(key)
		if len(key) == 0 {
			return 0, nil, fmt.Errorf("mpegsmooth: integrity keyfile %s is empty", path)
		}
		return IntegrityHMAC, key, nil
	default:
		return 0, nil, fmt.Errorf("mpegsmooth: unknown integrity mode %q (want fnv or hmac-sha256:<keyfile>)", spec)
	}
}

// AnalyzeVBV computes the minimum decoder start-up delay and peak
// decoder buffer occupancy implied by a schedule (the MPEG "model
// decoder" view of smoothing).
func AnalyzeVBV(s *core.Schedule) (VBVAnalysis, error) { return vbv.Analyze(s) }

// CheckVBV verifies that decoding with the given start-up delay and
// buffer capacity (bits) neither underflows nor overflows.
func CheckVBV(s *core.Schedule, startup, bufferBits float64) error {
	return vbv.Check(s, startup, bufferBits)
}
