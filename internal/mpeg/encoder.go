package mpeg

import (
	"errors"
	"fmt"

	"mpegsmooth/internal/bitio"
	"mpegsmooth/internal/mpeg/dct"
	"mpegsmooth/internal/mpeg/vlc"
	"mpegsmooth/internal/video"
)

// mbMode is the coding mode of one macroblock.
type mbMode uint8

const (
	mbIntra    mbMode = 0
	mbForward  mbMode = 1
	mbBackward mbMode = 2
	mbInterp   mbMode = 3
)

// Config parameterizes the encoder. The quantizer scales default to the
// values the paper used for its sequences: 4 for I, 6 for P, and 15 for B
// pictures (Section 5.2).
type Config struct {
	Width, Height int
	GOP           GOP
	PictureRate   float64

	IQuant, PQuant, BQuant int32 // quantizer scales, 1..31

	// SearchRange bounds motion vectors to ±SearchRange full pixels.
	SearchRange int

	// SkipSAD is the luma SAD at or below which a zero-motion P/B
	// macroblock is skipped entirely (copied from the forward reference).
	SkipSAD int

	// RepeatSequenceHeader writes the sequence header before every group
	// of pictures, not just once at the start — the paper's Section 2:
	// "Repeating the sequence header at the beginning of every group of
	// pictures makes it possible to begin decoding at intermediate points
	// in the video sequence (facilitating random access)."
	RepeatSequenceHeader bool

	// FullPelOnly disables half-pel motion refinement (an ablation knob:
	// MPEG-1 supports full-pel-only streams via the picture header's
	// full_pel flags). Prediction quality drops, P/B pictures grow.
	FullPelOnly bool
}

// DefaultConfig returns an encoder configuration matching the paper's
// encoding parameters at the given resolution and GOP pattern.
func DefaultConfig(width, height int, gop GOP) Config {
	return Config{
		Width: width, Height: height,
		GOP:         gop,
		PictureRate: 30,
		IQuant:      4,
		PQuant:      6,
		BQuant:      15,
		SearchRange: 8,
		// About 3 levels per pel: below the quantization noise the
		// residual coder would reproduce anyway.
		SkipSAD: 768,
	}
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	if c.Width <= 0 || c.Height <= 0 || c.Width%16 != 0 || c.Height%16 != 0 {
		return fmt.Errorf("mpeg: frame size %dx%d not a positive multiple of 16", c.Width, c.Height)
	}
	if c.Height/16 > int(SliceStartMax-SliceStartMin)+1 {
		return fmt.Errorf("mpeg: %d macroblock rows exceed slice start-code space", c.Height/16)
	}
	if err := c.GOP.Validate(); err != nil {
		return err
	}
	for _, q := range []int32{c.IQuant, c.PQuant, c.BQuant} {
		if q < 1 || q > 31 {
			return fmt.Errorf("mpeg: quantizer scale %d out of range 1..31", q)
		}
	}
	if c.SearchRange < 0 {
		return errors.New("mpeg: negative search range")
	}
	if c.SkipSAD < 0 {
		return errors.New("mpeg: negative skip threshold")
	}
	if _, err := pictureRateCode(c.PictureRate); err != nil {
		return err
	}
	return nil
}

// ModeStats counts macroblock coding decisions within one picture.
type ModeStats struct {
	Intra    int // intracoded macroblocks
	Forward  int // forward-predicted
	Backward int // backward-predicted (B pictures)
	Interp   int // interpolated (B pictures)
	Skipped  int // copied from the forward reference
}

// Total returns the macroblock count.
func (m ModeStats) Total() int {
	return m.Intra + m.Forward + m.Backward + m.Interp + m.Skipped
}

// PictureInfo describes one coded picture as it appears in the stream:
// the transport designer's view used to build picture-size traces.
type PictureInfo struct {
	DisplayIdx  int         // position in display order
	TransmitPos int         // position in transmission order
	Type        PictureType // I, P, or B
	BitOffset   int64       // offset of the picture start code in the stream
	Bits        int64       // coded size: picture start code through last slice
	// Modes summarizes the macroblock decisions (filled by the encoder;
	// zero for Inspect, which does not entropy-decode).
	Modes ModeStats
}

// EncodedSequence is the result of encoding a display-order frame
// sequence: the coded bit stream plus per-picture metadata in
// transmission order.
type EncodedSequence struct {
	Header   SequenceHeader
	Data     []byte
	Pictures []PictureInfo
}

// SizesInDisplayOrder returns the per-picture coded sizes in bits,
// indexed by display order — the S_1, S_2, ... sequence consumed by the
// smoothing algorithm.
func (s *EncodedSequence) SizesInDisplayOrder() []int64 {
	sizes := make([]int64, len(s.Pictures))
	for _, p := range s.Pictures {
		sizes[p.DisplayIdx] = p.Bits
	}
	return sizes
}

// Encoder compresses display-order frames into the simplified MPEG
// bitstream. An Encoder is single-use per sequence and not safe for
// concurrent use.
type Encoder struct {
	cfg   Config
	coder blockCoder
}

// NewEncoder validates cfg and returns an encoder.
func NewEncoder(cfg Config) (*Encoder, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Encoder{cfg: cfg, coder: newBlockCoder()}, nil
}

// EncodeSequence encodes frames (in display order) into a complete
// sequence: sequence header, GOP headers before each I picture, pictures
// in transmission order, and a sequence end code.
func (e *Encoder) EncodeSequence(frames []*video.Frame) (*EncodedSequence, error) {
	if len(frames) == 0 {
		return nil, errors.New("mpeg: no frames to encode")
	}
	for i, f := range frames {
		if f.W != e.cfg.Width || f.H != e.cfg.Height {
			return nil, fmt.Errorf("mpeg: frame %d is %dx%d, config says %dx%d", i, f.W, f.H, e.cfg.Width, e.cfg.Height)
		}
	}

	w := bitio.NewWriter()
	hdr := SequenceHeader{
		Width: e.cfg.Width, Height: e.cfg.Height,
		PictureRate: e.cfg.PictureRate,
	}
	if err := hdr.write(w); err != nil {
		return nil, err
	}

	order := e.cfg.GOP.TransmissionOrder(len(frames))
	out := &EncodedSequence{Header: hdr}
	var refs refPair

	for pos, d := range order {
		t := e.cfg.GOP.TypeOf(d)
		if t == TypeI {
			if e.cfg.RepeatSequenceHeader && pos > 0 {
				if err := hdr.write(w); err != nil {
					return nil, err
				}
			}
			gh := TimeCodeForPicture(d, e.cfg.PictureRate)
			if err := gh.write(w); err != nil {
				return nil, err
			}
		}

		fwd, bwd, err := refs.forPicture(t, d)
		if err != nil {
			return nil, err
		}
		// Scale the search range with the display distance to each
		// reference: a P picture M frames after its reference must track
		// M frames' worth of motion.
		fwdDist, bwdDist := 1, 1
		if fwd != nil {
			fwdDist = absInt(d - refs.futureIdx)
			if t == TypeB && bwd != nil {
				fwdDist = absInt(d - refs.pastIdx)
				bwdDist = absInt(refs.futureIdx - d)
			}
		}

		w.Align()
		start := w.BitsWritten()
		recon := video.MustNewFrame(e.cfg.Width, e.cfg.Height)
		modes, err := e.encodePicture(w, frames[d], d, t, fwd, bwd, fwdDist, bwdDist, recon)
		if err != nil {
			return nil, fmt.Errorf("mpeg: picture %d: %w", d, err)
		}
		w.Align()
		out.Pictures = append(out.Pictures, PictureInfo{
			DisplayIdx:  d,
			TransmitPos: pos,
			Type:        t,
			BitOffset:   start,
			Bits:        w.BitsWritten() - start,
			Modes:       modes,
		})

		if t != TypeB {
			refs.push(recon, d)
		}
	}

	w.WriteStartCode(SequenceEndCode)
	out.Data = append([]byte(nil), w.Bytes()...)
	return out, nil
}

// encodePicture writes one picture: picture header then one slice per
// macroblock row. It returns the macroblock mode statistics.
func (e *Encoder) encodePicture(w *bitio.Writer, cur *video.Frame, displayIdx int, t PictureType, fwd, bwd *video.Frame, fwdDist, bwdDist int, recon *video.Frame) (ModeStats, error) {
	var stats ModeStats
	ph := PictureHeader{TemporalRef: displayIdx, Type: t}
	if err := ph.write(w); err != nil {
		return stats, err
	}
	scale := e.quantFor(t)
	mbW, mbH := cur.MacroblocksX(), cur.MacroblocksY()
	for row := 0; row < mbH; row++ {
		sh := SliceHeader{Row: row, QuantScale: scale}
		if err := sh.write(w); err != nil {
			return stats, err
		}
		var preds dcPredictors
		preds.reset()
		lastCol := -1
		for col := 0; col < mbW; col++ {
			mode, mvf, mvb, skip := e.chooseMode(cur, t, fwd, bwd, fwdDist, bwdDist, col, row)
			if skip && col != mbW-1 {
				// Skipped macroblock: decoder copies the zero-motion
				// forward prediction. Mirror that in the reconstruction.
				copyMacroblock(recon, fwd, col, row)
				preds.reset()
				stats.Skipped++
				continue
			}
			vlc.WriteUE(w, uint32(col-lastCol-1))
			lastCol = col
			w.WriteBits(uint32(mode), 2)
			if mode == mbIntra {
				if err := e.encodeIntraMB(w, cur, col, row, scale, &preds, recon); err != nil {
					return stats, err
				}
				stats.Intra++
				continue
			}
			switch mode {
			case mbForward:
				stats.Forward++
			case mbBackward:
				stats.Backward++
			case mbInterp:
				stats.Interp++
			}
			if mode == mbForward || mode == mbInterp {
				vlc.WriteSE(w, int32(mvf.X))
				vlc.WriteSE(w, int32(mvf.Y))
			}
			if mode == mbBackward || mode == mbInterp {
				vlc.WriteSE(w, int32(mvb.X))
				vlc.WriteSE(w, int32(mvb.Y))
			}
			if err := e.encodeInterMB(w, cur, col, row, scale, mode, mvf, mvb, fwd, bwd, recon); err != nil {
				return stats, err
			}
			preds.reset()
		}
	}
	return stats, nil
}

// search runs motion estimation honouring the FullPelOnly ablation.
func (e *Encoder) search(cur, ref *video.Frame, col, row, searchRange int) (MotionVector, int) {
	if e.cfg.FullPelOnly {
		return searchMotionFullPel(cur, ref, col, row, searchRange)
	}
	return searchMotion(cur, ref, col, row, searchRange)
}

// scaledRange telescopes the search range with reference distance,
// capped to keep exhaustive search affordable.
func scaledRange(base, dist int) int {
	if dist < 1 {
		dist = 1
	}
	r := base * dist
	if r > 31 {
		r = 31
	}
	return r
}

func (e *Encoder) quantFor(t PictureType) int32 {
	switch t {
	case TypeI:
		return e.cfg.IQuant
	case TypeP:
		return e.cfg.PQuant
	default:
		return e.cfg.BQuant
	}
}

// chooseMode selects the coding mode for the macroblock at (col, row).
func (e *Encoder) chooseMode(cur *video.Frame, t PictureType, fwd, bwd *video.Frame, fwdDist, bwdDist, col, row int) (mode mbMode, mvf, mvb MotionVector, skip bool) {
	if t == TypeI {
		return mbIntra, MotionVector{}, MotionVector{}, false
	}
	intraCost := intraActivity(cur, col, row)

	// Skip check first: if the zero-motion forward copy is already good
	// enough, the macroblock costs nothing at all — the dominant case in
	// static content and the reason B pictures are tiny.
	if fwd != nil {
		if sad0 := sadLumaFull(cur, fwd, col, row, 0, 0, e.cfg.SkipSAD); sad0 <= e.cfg.SkipSAD {
			return mbForward, MotionVector{}, MotionVector{}, true
		}
	}

	var sadF, sadB int = 1 << 30, 1 << 30
	if fwd != nil {
		mvf, sadF = e.search(cur, fwd, col, row, scaledRange(e.cfg.SearchRange, fwdDist))
	}
	if t == TypeB && bwd != nil {
		mvb, sadB = e.search(cur, bwd, col, row, scaledRange(e.cfg.SearchRange, bwdDist))
	}

	best := mbForward
	bestSAD := sadF
	if t == TypeB && bwd != nil {
		if sadB < bestSAD {
			best, bestSAD = mbBackward, sadB
		}
		if sadI := interpSAD(cur, fwd, bwd, col, row, mvf, mvb); sadI < bestSAD {
			best, bestSAD = mbInterp, sadI
		}
	}
	// Intra wins only when prediction is clearly worse than coding the
	// block from scratch; the small bias avoids flip-flopping on noise.
	if intraCost+64 < bestSAD {
		return mbIntra, MotionVector{}, MotionVector{}, false
	}
	return best, mvf, mvb, false
}

// intraActivity estimates the cost of intra-coding a macroblock as the
// mean absolute deviation of its luma from the block mean — the classic
// variance-based intra/inter decision measure.
func intraActivity(f *video.Frame, col, row int) int {
	x0, y0 := col*16, row*16
	var sum int
	for dy := 0; dy < 16; dy++ {
		i := (y0+dy)*f.W + x0
		for dx := 0; dx < 16; dx++ {
			sum += int(f.Y[i+dx])
		}
	}
	mean := sum / 256
	var dev int
	for dy := 0; dy < 16; dy++ {
		i := (y0+dy)*f.W + x0
		for dx := 0; dx < 16; dx++ {
			d := int(f.Y[i+dx]) - mean
			if d < 0 {
				d = -d
			}
			dev += d
		}
	}
	return dev
}

// interpSAD evaluates the interpolated (averaged) B prediction.
func interpSAD(cur, fwd, bwd *video.Frame, col, row int, mvf, mvb MotionVector) int {
	var pf, pb [256]int32
	predictLuma(&pf, fwd, col, row, mvf)
	predictLuma(&pb, bwd, col, row, mvb)
	x0, y0 := col*16, row*16
	sum := 0
	for dy := 0; dy < 16; dy++ {
		i := (y0+dy)*cur.W + x0
		for dx := 0; dx < 16; dx++ {
			p := (pf[dy*16+dx] + pb[dy*16+dx] + 1) / 2
			d := int(cur.Y[i+dx]) - int(p)
			if d < 0 {
				d = -d
			}
			sum += d
		}
	}
	return sum
}

// encodeIntraMB codes the six blocks of an intra macroblock.
func (e *Encoder) encodeIntraMB(w *bitio.Writer, cur *video.Frame, col, row int, scale int32, preds *dcPredictors, recon *video.Frame) error {
	x0, y0 := col*16, row*16
	var spatial, rec dct.Block
	for b := 0; b < 4; b++ {
		bx, by := x0+(b%2)*8, y0+(b/2)*8
		extractLuma(cur, bx, by, &spatial)
		var err error
		preds.y, err = e.coder.encodeIntraBlock(w, &spatial, scale, preds.y, true, &rec)
		if err != nil {
			return err
		}
		storeLuma(recon, bx, by, &rec)
	}
	cw := cur.ChromaW()
	cx, cy := col*8, row*8
	extractChroma(cur.Cb, cw, cx, cy, &spatial)
	var err error
	preds.cb, err = e.coder.encodeIntraBlock(w, &spatial, scale, preds.cb, false, &rec)
	if err != nil {
		return err
	}
	storeChroma(recon.Cb, cw, cx, cy, &rec)
	extractChroma(cur.Cr, cw, cx, cy, &spatial)
	preds.cr, err = e.coder.encodeIntraBlock(w, &spatial, scale, preds.cr, false, &rec)
	if err != nil {
		return err
	}
	storeChroma(recon.Cr, cw, cx, cy, &rec)
	return nil
}

// encodeInterMB codes a predicted macroblock: builds the prediction,
// quantizes the six residual blocks, emits the coded-block pattern and the
// coded blocks, and reconstructs.
func (e *Encoder) encodeInterMB(w *bitio.Writer, cur *video.Frame, col, row int, scale int32, mode mbMode, mvf, mvb MotionVector, fwd, bwd *video.Frame, recon *video.Frame) error {
	var predY [256]int32
	var predCb, predCr [64]int32
	buildPrediction(&predY, &predCb, &predCr, mode, mvf, mvb, fwd, bwd, col, row)

	x0, y0 := col*16, row*16
	cw := cur.ChromaW()
	cx, cy := col*8, row*8

	type blockPlan struct {
		scanned [64]int32
		coded   bool
	}
	var plans [6]blockPlan
	var residual dct.Block

	for b := 0; b < 4; b++ {
		bx, by := (b%2)*8, (b/2)*8
		for dy := 0; dy < 8; dy++ {
			i := (y0+by+dy)*cur.W + x0 + bx
			for dx := 0; dx < 8; dx++ {
				residual[dy*8+dx] = int32(cur.Y[i+dx]) - predY[(by+dy)*16+bx+dx]
			}
		}
		plans[b].scanned, plans[b].coded = e.coder.quantizeResidual(&residual, scale)
	}
	for dy := 0; dy < 8; dy++ {
		i := (cy+dy)*cw + cx
		for dx := 0; dx < 8; dx++ {
			residual[dy*8+dx] = int32(cur.Cb[i+dx]) - predCb[dy*8+dx]
		}
	}
	plans[4].scanned, plans[4].coded = e.coder.quantizeResidual(&residual, scale)
	for dy := 0; dy < 8; dy++ {
		i := (cy+dy)*cw + cx
		for dx := 0; dx < 8; dx++ {
			residual[dy*8+dx] = int32(cur.Cr[i+dx]) - predCr[dy*8+dx]
		}
	}
	plans[5].scanned, plans[5].coded = e.coder.quantizeResidual(&residual, scale)

	var cbp uint32
	for b, p := range plans {
		if p.coded {
			cbp |= 1 << (5 - b)
		}
	}
	w.WriteBits(cbp, 6)
	for b := range plans {
		if plans[b].coded {
			if err := e.coder.emitResidual(w, &plans[b].scanned); err != nil {
				return err
			}
		}
	}

	// Reconstruct: prediction plus decoded residual, exactly as the
	// decoder will.
	var rec dct.Block
	for b := 0; b < 4; b++ {
		bx, by := (b%2)*8, (b/2)*8
		if plans[b].coded {
			e.coder.reconstructResidual(&plans[b].scanned, scale, &rec)
		} else {
			rec = dct.Block{}
		}
		for dy := 0; dy < 8; dy++ {
			i := (y0+by+dy)*recon.W + x0 + bx
			for dx := 0; dx < 8; dx++ {
				recon.Y[i+dx] = clampPel(predY[(by+dy)*16+bx+dx] + rec[dy*8+dx])
			}
		}
	}
	for pi, plane := range [][]uint8{recon.Cb, recon.Cr} {
		pred := &predCb
		if pi == 1 {
			pred = &predCr
		}
		if plans[4+pi].coded {
			e.coder.reconstructResidual(&plans[4+pi].scanned, scale, &rec)
		} else {
			rec = dct.Block{}
		}
		for dy := 0; dy < 8; dy++ {
			i := (cy+dy)*cw + cx
			for dx := 0; dx < 8; dx++ {
				plane[i+dx] = clampPel(pred[dy*8+dx] + rec[dy*8+dx])
			}
		}
	}
	return nil
}

// buildPrediction assembles the luma and chroma predictions for the given
// mode. Shared by encoder and decoder.
func buildPrediction(predY *[256]int32, predCb, predCr *[64]int32, mode mbMode, mvf, mvb MotionVector, fwd, bwd *video.Frame, col, row int) {
	switch mode {
	case mbForward:
		predictLuma(predY, fwd, col, row, mvf)
		predictChroma(predCb, predCr, fwd, col, row, mvf)
	case mbBackward:
		predictLuma(predY, bwd, col, row, mvb)
		predictChroma(predCb, predCr, bwd, col, row, mvb)
	case mbInterp:
		var y2 [256]int32
		var cb2, cr2 [64]int32
		predictLuma(predY, fwd, col, row, mvf)
		predictChroma(predCb, predCr, fwd, col, row, mvf)
		predictLuma(&y2, bwd, col, row, mvb)
		predictChroma(&cb2, &cr2, bwd, col, row, mvb)
		averagePrediction(predY[:], predY[:], y2[:])
		averagePrediction(predCb[:], predCb[:], cb2[:])
		averagePrediction(predCr[:], predCr[:], cr2[:])
	default:
		panic("mpeg: buildPrediction on intra macroblock")
	}
}

// copyMacroblock copies the co-located macroblock from src into dst, the
// reconstruction of a skipped macroblock.
func copyMacroblock(dst, src *video.Frame, col, row int) {
	x0, y0 := col*16, row*16
	for dy := 0; dy < 16; dy++ {
		copy(dst.Y[(y0+dy)*dst.W+x0:(y0+dy)*dst.W+x0+16], src.Y[(y0+dy)*src.W+x0:(y0+dy)*src.W+x0+16])
	}
	cw := dst.ChromaW()
	cx, cy := col*8, row*8
	for dy := 0; dy < 8; dy++ {
		copy(dst.Cb[(cy+dy)*cw+cx:(cy+dy)*cw+cx+8], src.Cb[(cy+dy)*cw+cx:(cy+dy)*cw+cx+8])
		copy(dst.Cr[(cy+dy)*cw+cx:(cy+dy)*cw+cx+8], src.Cr[(cy+dy)*cw+cx:(cy+dy)*cw+cx+8])
	}
}
