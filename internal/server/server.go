// Package server implements smoothd: a multi-stream smoothing daemon
// that multiplexes many concurrent live picture streams onto one shared
// egress link of fixed capacity.
//
// The paper's argument for lossless smoothing is statistical
// multiplexing (Section 5): many smoothed VBR streams share a
// finite-buffer link far better than unsmoothed ones. smoothd turns
// that into a serving system. Each sender opens a session with a
// StreamHello declaring its encoding parameters and the peak rate of
// its smoothed schedule; a peak-rate admission controller
// (netsim.Admission) reserves that peak against the link capacity and
// rejects streams that would overload it — at admission time, before
// their first picture, never by dropping cells mid-stream. Every
// admitted stream is driven through its own core.Session (one
// goroutine, per the Session contract) with the server's configured
// rate-selection policy, and its pictures are paced onto the shared
// link at the decided rates. Because every admitted stream transmits at
// or below its reserved peak, the aggregate egress never exceeds the
// link capacity: the multiplexing stays lossless by construction.
//
// The transport under the server is chaos-hardened: frames are CRC- and
// sequence-checked, so corruption and loss are detected rather than
// decoded, and an admitted stream that drops mid-session can reconnect
// with its resume token inside the configured ResumeWindow. The server
// parks the disconnected stream — Session, queue, and admission
// reservation intact — and on resume tells the sender exactly which
// picture to replay from, deduplicating anything it already accepted.
// A flaky link therefore costs delay, never pictures.
package server

import (
	"context"
	cryptorand "crypto/rand"
	"encoding/binary"
	"errors"
	"expvar"
	"fmt"
	"io"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"mpegsmooth/internal/core"
	"mpegsmooth/internal/journal"
	"mpegsmooth/internal/netsim"
	"mpegsmooth/internal/transport"
)

// egressChunk is the pacing granularity in bytes: streams interleave on
// the shared link at this grain.
const egressChunk = 4096

// CommitGate delays durable commits until a replication quorum holds
// them. WaitCommitted blocks until journal publish sequence seq is
// acknowledged by enough replicas or the gate degrades to local-only
// durability (both nil); a non-nil error is terminal — the verdict must
// not be released, and the caller rolls the commit back.
type CommitGate interface {
	WaitCommitted(ctx context.Context, seq uint64) error
}

// delayTolerance absorbs float rounding when a schedule's maximum
// per-picture delay is compared against its bound D.
const delayTolerance = 1e-9

// Config parameterizes a smoothd server.
type Config struct {
	// LinkRate is the shared egress link capacity in bits/second; the
	// admission controller reserves declared stream peaks against it.
	LinkRate float64
	// Policy selects rates for every stream's smoothing session; nil
	// means core.BasicPolicy (fewest rate changes).
	Policy core.Policy
	// H is the lookahead interval in pictures; 0 resolves to each
	// stream's own pattern length N (the paper's usual choice).
	H int
	// QueueLen bounds each stream's decision queue between ingest and
	// egress (default 32). A full queue blocks ingest, which stops
	// reading the connection — backpressure propagates to the sender
	// through TCP flow control rather than growing memory.
	QueueLen int
	// MaxStreams caps concurrently active streams (0 = no cap beyond
	// link capacity).
	MaxStreams int
	// ReadTimeout bounds the wait for each inbound message so a stalled
	// sender cannot wedge its stream forever (default 30s).
	ReadTimeout time.Duration
	// WriteTimeout bounds each outbound write — verdicts and, when the
	// egress sink supports write deadlines, shared-link writes (default:
	// ReadTimeout).
	WriteTimeout time.Duration
	// ResumeWindow is how long a disconnected admitted stream is parked
	// (reservation held, Session intact) awaiting a StreamResume with
	// its token. Zero disables resumption: a connection fault fails the
	// stream immediately.
	ResumeWindow time.Duration
	// MaxPictureBytes caps the payload size a frame may declare before
	// the server allocates for it (default
	// transport.DefaultMaxPictureBytes).
	MaxPictureBytes int
	// TimeScale compresses egress pacing, like transport.Sender: wall
	// durations are schedule durations divided by TimeScale (default 1).
	TimeScale float64
	// Egress is the shared link sink; nil means io.Discard. Writes from
	// all streams are serialized onto it in pacing order.
	Egress io.Writer
	// Clock abstracts time for tests; nil means the wall clock.
	Clock transport.Clock
	// Journal, when set, is the crash-safety write-ahead log: stream
	// admissions, accept watermarks, completions, and expiries are
	// recorded (fsynced before any verdict or ack a sender may act on),
	// and New replays the journal's recovered state into the nonce
	// ledger, admission reservations, parked-stream table, and
	// tombstone map — so a sender redialing after a server crash gets a
	// correct resume or AlreadyComplete verdict instead of a rejection.
	// The server owns the journal from here: it is closed by Shutdown
	// and abandoned by Kill.
	Journal *journal.Journal
	// Quorum, when set, holds admission and completion verdicts after
	// the local journal fsync until the record's publish sequence is
	// acknowledged by a replication quorum (or the gate degrades to
	// local-only durability). A terminal gate error rolls the admission
	// back instead of acknowledging a commit replicas may never hold.
	Quorum CommitGate
	// Epoch is the primary fencing term stamped into every verdict and
	// redirect this server writes. A cluster primary sets it from the
	// journal's epoch record at promotion; a sender that has seen a
	// higher epoch treats this server's verdicts as coming from a
	// deposed primary. Zero means unclustered (no stamping semantics).
	Epoch uint64
	// Route, when set, maps a session key — a hello nonce or resume
	// token — to the owning shard's stream address. A session this
	// server does not own is answered with a transport.Redirect naming
	// addr instead of a verdict, so in a sharded fleet every shard can
	// be dialed and the hash ring decides placement. Nonce-less hellos
	// (no dedup key) are always treated as local.
	Route func(key uint64) (addr string, local bool)
	// OwnsToken, when set, filters freshly issued resume tokens so they
	// hash to this shard on the placement ring: resumes then route home
	// by the same rule that routed the hello.
	OwnsToken func(token uint64) bool
	// Integrity is the prefix-hash mode this server requires in every
	// hello (default IntegrityFNV). A hello declaring any other mode is
	// rejected as malformed. IntegrityHMAC requires IntegrityKey.
	Integrity transport.IntegrityMode
	// IntegrityKey is the shared secret for IntegrityHMAC sessions.
	IntegrityKey []byte
	// Logf, when set, receives one line per session outcome.
	Logf func(format string, args ...any)
}

func (c *Config) withDefaults() Config {
	cfg := *c
	if cfg.Policy == nil {
		cfg.Policy = core.BasicPolicy{}
	}
	if cfg.QueueLen <= 0 {
		cfg.QueueLen = 32
	}
	if cfg.ReadTimeout <= 0 {
		cfg.ReadTimeout = 30 * time.Second
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = cfg.ReadTimeout
	}
	if cfg.MaxPictureBytes <= 0 {
		cfg.MaxPictureBytes = transport.DefaultMaxPictureBytes
	}
	if cfg.TimeScale <= 0 {
		cfg.TimeScale = 1
	}
	if cfg.Egress == nil {
		cfg.Egress = io.Discard
	}
	if cfg.Clock == nil {
		cfg.Clock = transport.RealClock{}
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	return cfg
}

// Server is a running smoothd instance. Create with New, drive with
// Serve, stop with Shutdown.
type Server struct {
	cfg    Config
	ctx    context.Context
	cancel context.CancelFunc
	egress *link
	wg     sync.WaitGroup

	mu        sync.Mutex
	admission *netsim.Admission
	streams   map[uint64]*stream
	resumable map[uint64]*stream // resume token → parked-capable stream
	nextID    uint64
	ln        net.Listener
	closed    bool

	// nonces and tombstones are lock-sharded (see ledger.go) so
	// duplicate-hello probes and late-resume lookups in a saturated soak
	// do not serialize on the admission mutex. The nonce ledger routes a
	// redialing sender to its live stream; the tombstone ledger answers
	// a resume after a lost completion ack with a precise
	// AlreadyComplete verdict instead of an unknown-token rejection.
	nonces     *nonceLedger
	tombstones *tombLedger

	// journal is cfg.Journal (nil disables durability); the recovered
	// counters report what the journal replay rebuilt at startup.
	journal             *journal.Journal
	recoveredStreams    int64
	recoveredTombstones int64

	completed         int64
	failed            int64
	rejectedMalformed int64
	rejectedBusy      int64
	helloDeduped      int64
	alreadyComplete   int64
	redirected        int64

	// faultTotals accumulates finished streams' fault counters; active
	// streams' counters are added at snapshot time.
	faultTotals FaultCounts

	// finished keeps the last finishedKeep stream snapshots for ops and
	// post-mortems; worstHeadroom and delayViolations aggregate the
	// delay-bound outcome over every finished stream.
	finished        []StreamSnapshot
	worstHeadroom   float64
	delayViolations int64
}

// finishedKeep bounds the retained per-stream history.
const finishedKeep = 256

// tombstoneKeep is the completion-tombstone ledger's capacity floor;
// the adaptive sizer grows it with the observed completion rate.
const tombstoneKeep = 4096

// tombstone records a completed stream's final state: enough to answer
// a late resume (the sender's copy of the completion ack was lost) with
// an AlreadyComplete verdict the sender can verify byte-exactly.
type tombstone struct {
	fnv      uint64 // final FNV-1a over every accepted payload, in order
	pictures int    // total pictures accepted
	expires  time.Time
}

// activeServer backs the process-wide "smoothd" expvar: the most
// recently created server is the one a production process runs.
var (
	activeServer atomic.Pointer[Server]
	expvarOnce   sync.Once
)

// New validates the configuration and prepares a server. When a
// journal is configured, its recovered state is replayed here: crashed
// streams come back parked (reservation held, waiting out the resume
// window for their sender to redial) and completion tombstones come
// back answerable.
func New(cfg Config) (*Server, error) {
	if cfg.LinkRate <= 0 || math.IsNaN(cfg.LinkRate) || math.IsInf(cfg.LinkRate, 0) {
		return nil, fmt.Errorf("server: non-positive link rate %v", cfg.LinkRate)
	}
	if !cfg.Integrity.Valid() {
		return nil, fmt.Errorf("server: unknown integrity mode %d", cfg.Integrity)
	}
	if cfg.Integrity == transport.IntegrityHMAC && len(cfg.IntegrityKey) == 0 {
		return nil, errors.New("server: integrity mode hmac-sha256 needs a key")
	}
	adm, err := netsim.NewAdmission(cfg.LinkRate)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:           cfg.withDefaults(),
		ctx:           ctx,
		cancel:        cancel,
		admission:     adm,
		streams:       map[uint64]*stream{},
		resumable:     map[uint64]*stream{},
		nonces:        newNonceLedger(),
		tombstones:    newTombLedger(),
		worstHeadroom: math.Inf(1),
	}
	s.egress = newLink(s.cfg.Egress, s.cfg.WriteTimeout)
	s.journal = s.cfg.Journal
	if s.journal != nil {
		s.recoverFromJournal()
	}
	activeServer.Store(s)
	expvarOnce.Do(func() {
		expvar.Publish("smoothd", expvar.Func(func() any {
			if srv := activeServer.Load(); srv != nil {
				return srv.Snapshot()
			}
			return nil
		}))
	})
	return s, nil
}

// Serve accepts stream sessions on ln until the listener is closed
// (normally by Shutdown). Each connection is handled on its own
// goroutine pair: ingest (read, smooth, enqueue) and egress (pace onto
// the shared link).
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("server: already shut down")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

// Shutdown drains the server: it stops accepting sessions and waits for
// active streams to finish. If ctx expires first, remaining streams are
// cancelled and their connections closed, and ctx's error is returned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		if s.journal != nil {
			return s.journal.Close()
		}
		return nil
	case <-ctx.Done():
		s.cancel()
		s.mu.Lock()
		for _, st := range s.streams {
			st.closeConn()
		}
		s.mu.Unlock()
		<-done
		if s.journal != nil {
			// Cancelled streams were NOT journaled as expired: their
			// sessions survive in the journal, so the next generation
			// recovers them parked and their senders resume.
			s.journal.Close()
		}
		return ctx.Err()
	}
}

// Kill terminates the server the way a crash would: the journal is
// abandoned (no flush, no graceful records), every stream's context is
// cancelled and its connection dropped, and nothing is acked or
// drained. The kill-and-restart chaos harness uses it as an in-process
// SIGKILL; combined with a journal on a power-loss-modelling FS, what
// the next generation recovers is exactly what was durable.
func (s *Server) Kill() {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	streams := make([]*stream, 0, len(s.streams))
	for _, st := range s.streams {
		streams = append(streams, st)
	}
	s.mu.Unlock()
	if s.journal != nil {
		s.journal.Abandon()
	}
	s.cancel()
	if ln != nil {
		ln.Close()
	}
	for _, st := range streams {
		st.closeConn()
	}
	s.wg.Wait()
}

// SeverConns force-closes every live stream connection without
// stopping the server: streams park (or fail, if resumption is off)
// exactly as they would on a network fault. The cluster's partition
// simulation uses it so an isolated primary loses its clients the way
// a real partition would take them.
func (s *Server) SeverConns() {
	s.mu.Lock()
	streams := make([]*stream, 0, len(s.streams))
	for _, st := range s.streams {
		streams = append(streams, st)
	}
	s.mu.Unlock()
	for _, st := range streams {
		st.closeConn()
	}
}

// recoverFromJournal replays the journal's recovered state into the
// server's ledgers: live streams come back parked (session rebuilt at
// the journaled watermark, prefix hash restored, reservation
// rehydrated) with a goroutine waiting out the resume window; unexpired
// tombstones come back answerable. Records that no longer fit this
// generation's configuration are expired in the journal rather than
// resurrected wrong.
func (s *Server) recoverFromJournal() {
	state := s.journal.State()
	now := time.Now()
	expire := func(token, nonce uint64, reason journal.ExpireReason, why string) {
		if _, err := s.journal.Expired(token, nonce, reason); err != nil {
			s.cfg.Logf("smoothd: recovery: expiring %016x (%s): %v", token, why, err)
		} else {
			s.cfg.Logf("smoothd: recovery: dropped journaled %s for token %016x", why, token)
		}
	}
	for token, rec := range state.Streams {
		if s.cfg.ResumeWindow <= 0 {
			expire(token, rec.Hello.Nonce, journal.ExpireResumeWindow, "stream (resumption disabled)")
			continue
		}
		if rec.Hello.Integrity != s.cfg.Integrity {
			expire(token, rec.Hello.Nonce, journal.ExpireFailed, "stream (integrity mode changed)")
			continue
		}
		ph, err := transport.NewPrefixHash(rec.Hello.Integrity, s.cfg.IntegrityKey)
		if err == nil && len(rec.HashState) > 0 {
			err = ph.Restore(rec.HashState)
		}
		if err != nil {
			expire(token, rec.Hello.Nonce, journal.ExpireFailed, "stream (prefix hash unrecoverable)")
			continue
		}
		st := newParkedStream(rec.Hello, s.cfg.QueueLen, ph, rec.Watermark)
		h := s.cfg.H
		if h <= 0 {
			h = rec.Hello.GOP.N
		}
		sess, err := core.NewSession(rec.Hello.Tau, rec.Hello.GOP, core.Config{
			K: rec.Hello.K, D: rec.Hello.D, H: h, Policy: s.cfg.Policy,
		}, core.WithObserver(st.observe))
		if err != nil {
			expire(token, rec.Hello.Nonce, journal.ExpireFailed, "stream (session rebuild failed)")
			continue
		}
		st.sess = sess
		st.token = token
		s.mu.Lock()
		s.nextID++
		st.id = s.nextID
		s.streams[st.id] = st
		s.resumable[token] = st
		if rec.Hello.Nonce != 0 {
			s.nonces.put(rec.Hello.Nonce, st)
		}
		s.admission.Rehydrate(rec.Hello.Nonce, rec.Hello.PeakRate, now, s.nonceTTL())
		s.recoveredStreams++
		s.mu.Unlock()
		s.cfg.Logf("smoothd: recovered stream %d (token %016x) parked at picture %d awaiting resume",
			st.id, token, rec.Watermark)
		s.wg.Add(1)
		go func(st *stream) {
			defer s.wg.Done()
			err := s.run(st, nil)
			s.finish(st, err)
			st.closeConn()
		}(st)
	}
	for token, tb := range state.Tombstones {
		if now.After(tb.Expires) || len(tb.HashState) < 8 {
			expire(token, tb.Nonce, journal.ExpireTombstone, "tombstone (expired)")
			continue
		}
		s.tombstones.put(token, tombstone{
			fnv:      binary.BigEndian.Uint64(tb.HashState),
			pictures: tb.Pictures,
			expires:  tb.Expires,
		}, s.tombstoneTTL())
		s.mu.Lock()
		s.recoveredTombstones++
		s.mu.Unlock()
	}
}

// journalWatermark coalesces the stream's accept watermark and prefix
// hash state for the journal's next flush; it never blocks on the disk.
func (s *Server) journalWatermark(st *stream) {
	if s.journal == nil || st.token == 0 {
		return
	}
	next, state := st.prefixState()
	s.journal.Watermark(st.token, next, state)
	// state is the stream's scratch buffer; Watermark copied it into the
	// journal's own coalescing entry, so it is free for the next picture.
}

// journalComplete makes a stream's completion durable — called before
// the completion ack is written, so an acked stream is always
// answerable as AlreadyComplete after a crash. A failure here degrades
// durability, not correctness: the un-journaled completion recovers as
// a fully-caught-up parked stream, and the sender's resume completes it
// again idempotently.
func (s *Server) journalComplete(st *stream) (uint64, error) {
	if s.journal == nil || st.token == 0 {
		return 0, nil
	}
	next, sum := st.resumePoint()
	var state [8]byte
	binary.BigEndian.PutUint64(state[:], sum)
	return s.journal.Completed(journal.TombstoneRecord{
		Token: st.token, Nonce: st.hello.Nonce, Pictures: next,
		HashState: state[:], Expires: time.Now().Add(s.tombstoneTTL()),
	})
}

// handle runs one connection: the first message decides whether it is a
// new session (StreamHello) or a reconnect (StreamResume). One
// FrameReader/FrameWriter pair owns each direction for the connection's
// whole life — the frame sequence counters span handshake and stream.
func (s *Server) handle(conn net.Conn) {
	fr := transport.NewFrameReaderBuffered(conn)
	fr.MaxPayload = s.cfg.MaxPictureBytes
	fw := transport.NewFrameWriter(conn)
	fw.WriteTimeout = s.cfg.WriteTimeout
	fw.MaxPayload = s.cfg.MaxPictureBytes

	msg, err := fr.ReadMessageTimeout(s.cfg.ReadTimeout)
	if err != nil {
		s.rejectConn(conn, fw, transport.RejectedMalformed, err)
		return
	}
	switch m := msg.(type) {
	case *transport.StreamHello:
		s.handleHello(conn, fr, fw, m)
	case *transport.StreamResume:
		s.handleResume(conn, fr, fw, m)
	default:
		s.rejectConn(conn, fw, transport.RejectedMalformed,
			fmt.Errorf("server: expected hello or resume, got %T", msg))
	}
}

// redirectIfRemote answers a handshake whose session key another shard
// owns with that shard's address (best effort) and closes the
// connection. It reports whether the connection was redirected.
func (s *Server) redirectIfRemote(conn net.Conn, fw *transport.FrameWriter, key uint64) bool {
	if s.cfg.Route == nil {
		return false
	}
	addr, local := s.cfg.Route(key)
	if local {
		return false
	}
	s.mu.Lock()
	s.redirected++
	s.mu.Unlock()
	fw.WriteRedirect(transport.Redirect{Addr: addr, Epoch: s.cfg.Epoch})
	conn.Close()
	s.cfg.Logf("smoothd: %s redirected to %s (key %016x not owned by this shard)",
		conn.RemoteAddr(), addr, key)
	return true
}

// rejectConn answers a doomed connection with a verdict (best effort)
// and closes it.
func (s *Server) rejectConn(conn net.Conn, fw *transport.FrameWriter, code transport.VerdictCode, cause error) {
	s.mu.Lock()
	switch code {
	case transport.RejectedMalformed:
		s.rejectedMalformed++
	case transport.RejectedBusy:
		s.rejectedBusy++
	}
	avail := s.admission.Available()
	s.mu.Unlock()
	fw.WriteVerdict(transport.Verdict{Code: code, Available: avail, Epoch: s.cfg.Epoch})
	conn.Close()
	s.cfg.Logf("smoothd: %s %s: %v", conn.RemoteAddr(), code, cause)
}

// handleHello runs a new session from admission to completion. A hello
// whose nonce matches a live stream is a retransmission — the sender's
// copy of our admission verdict was lost in flight and it redialed — so
// instead of reserving a second session we reattach the connection to
// the existing one, exactly as a resume would.
func (s *Server) handleHello(conn net.Conn, fr *transport.FrameReader, fw *transport.FrameWriter, hello *transport.StreamHello) {
	if hello.Nonce != 0 && s.redirectIfRemote(conn, fw, hello.Nonce) {
		return
	}
	if hello.Nonce != 0 {
		prior := s.nonces.get(hello.Nonce)
		if prior != nil {
			if prior.hello != *hello {
				s.rejectConn(conn, fw, transport.RejectedMalformed,
					fmt.Errorf("server: hello nonce %016x reused with different parameters", hello.Nonce))
				return
			}
			s.mu.Lock()
			s.helloDeduped++
			s.mu.Unlock()
			s.cfg.Logf("smoothd: stream %d hello deduplicated by nonce from %s", prior.id, conn.RemoteAddr())
			s.reattach(conn, fr, fw, prior, prior.token)
			return
		}
	}
	st, verdict, err := s.admit(conn, fr, fw, hello)
	if werr := fw.WriteVerdict(verdict); werr != nil && err == nil {
		err = werr
	}
	if st == nil {
		conn.Close()
		s.cfg.Logf("smoothd: %s %s: %v", conn.RemoteAddr(), verdict.Code, err)
		return
	}
	err = s.run(st, err)
	s.finish(st, err)
	st.closeConn()
}

// handleResume hands a reconnecting sender's connection to its parked
// stream. An unknown token is checked against the completion tombstones
// first: a sender that finished but lost the completion ack gets an
// AlreadyComplete verdict carrying the final hash, not a rejection.
func (s *Server) handleResume(conn net.Conn, fr *transport.FrameReader, fw *transport.FrameWriter, m *transport.StreamResume) {
	if s.redirectIfRemote(conn, fw, m.Token) {
		return
	}
	s.mu.Lock()
	st := s.resumable[m.Token]
	closed := s.closed
	avail := s.admission.Available()
	s.mu.Unlock()
	var tomb tombstone
	entombed := false
	if st == nil {
		tomb, entombed = s.tombstones.lookup(m.Token)
	}
	if entombed {
		s.mu.Lock()
		s.alreadyComplete++
		s.mu.Unlock()
		fw.WriteVerdict(transport.Verdict{
			Code: transport.AlreadyComplete, Available: avail,
			ResumeToken: m.Token, NextIndex: tomb.pictures, PrefixFNV: tomb.fnv,
			Epoch: s.cfg.Epoch,
		})
		conn.Close()
		s.cfg.Logf("smoothd: resume from %s answered already-complete (%d pictures, fnv %016x)",
			conn.RemoteAddr(), tomb.pictures, tomb.fnv)
		return
	}
	if st == nil || closed {
		s.rejectConn(conn, fw, transport.RejectedMalformed,
			fmt.Errorf("server: resume with unknown token"))
		return
	}
	s.reattach(conn, fr, fw, st, m.Token)
}

// reattach hands a reconnecting sender's connection (resume by token or
// hello retransmission matched by nonce) to its parked stream. The
// accepting flag (under the stream's lock) serializes competing
// reconnect attempts; the verdict carrying the replay point and the
// accepted-prefix hash is written before the connection changes hands.
func (s *Server) reattach(conn net.Conn, fr *transport.FrameReader, fw *transport.FrameWriter, st *stream, token uint64) {
	s.mu.Lock()
	avail := s.admission.Available()
	s.mu.Unlock()
	st.mu.Lock()
	if !st.accepting {
		// The stream has not parked yet — most likely its ingest loop is
		// still blocked on the dead connection. Close that connection to
		// expedite fault detection; the sender's backoff retry will find
		// the stream parked.
		old := st.conn
		st.mu.Unlock()
		if old != nil {
			old.Close()
		}
		s.rejectConn(conn, fw, transport.RejectedBusy,
			fmt.Errorf("server: stream %d not yet accepting resume", st.id))
		return
	}
	st.accepting = false // claim the resume slot
	st.mu.Unlock()
	// The claim parks the watermark: ingest is blocked on resumeCh, so
	// the resume point cannot move under us.
	next, prefix := st.resumePoint()

	if err := fw.WriteVerdict(transport.Verdict{
		Code: transport.Admitted, Available: avail,
		ResumeToken: token, NextIndex: next, PrefixFNV: prefix,
		Epoch: s.cfg.Epoch,
	}); err != nil {
		// Could not deliver the replay point; reopen the slot for the
		// sender's next attempt.
		st.mu.Lock()
		st.accepting = true
		st.mu.Unlock()
		conn.Close()
		return
	}
	st.mu.Lock()
	if st.resumeGone {
		// The resume window expired between our claim and now; the
		// stream is finishing and will never read the channel.
		st.mu.Unlock()
		conn.Close()
		return
	}
	st.resumeCh <- resumedConn{conn: conn, fr: fr, fw: fw}
	st.mu.Unlock()
	s.cfg.Logf("smoothd: stream %d resumed from %s at picture %d", st.id, conn.RemoteAddr(), next)
}

// admit validates the hello and takes the admission decision. A nil
// stream means the connection ends after the verdict.
func (s *Server) admit(conn net.Conn, fr *transport.FrameReader, fw *transport.FrameWriter, hello *transport.StreamHello) (*stream, transport.Verdict, error) {
	reject := func(code transport.VerdictCode, err error) (*stream, transport.Verdict, error) {
		s.mu.Lock()
		switch code {
		case transport.RejectedMalformed:
			s.rejectedMalformed++
		case transport.RejectedBusy:
			s.rejectedBusy++
		}
		avail := s.admission.Available()
		s.mu.Unlock()
		return nil, transport.Verdict{Code: code, Available: avail, Epoch: s.cfg.Epoch}, err
	}

	if hello.Integrity != s.cfg.Integrity {
		return reject(transport.RejectedMalformed,
			fmt.Errorf("server: hello integrity mode %s, this server requires %s",
				hello.Integrity, s.cfg.Integrity))
	}
	ph, err := transport.NewPrefixHash(hello.Integrity, s.cfg.IntegrityKey)
	if err != nil {
		return reject(transport.RejectedMalformed, err)
	}

	h := s.cfg.H
	if h <= 0 {
		h = hello.GOP.N
	}
	st := newStream(conn, fr, fw, *hello, s.cfg.QueueLen, ph)
	// Hand the reader the stream's payload pool: ingest reads each
	// picture into a recycled buffer, and egress (or the duplicate-drop
	// path) returns it once the bytes are finished with.
	fr.Pool = &st.pool
	sess, err := core.NewSession(hello.Tau, hello.GOP, core.Config{
		K: hello.K, D: hello.D, H: h, Policy: s.cfg.Policy,
	}, core.WithObserver(st.observe))
	if err != nil {
		return reject(transport.RejectedMalformed, err)
	}
	st.sess = sess

	s.mu.Lock()
	if s.closed || (s.cfg.MaxStreams > 0 && int64(s.cfg.MaxStreams) <= s.admission.Active()) {
		s.mu.Unlock()
		return reject(transport.RejectedBusy, errors.New("server: at stream limit or shutting down"))
	}
	admitted, duplicate := s.admission.AdmitNonce(hello.Nonce, hello.PeakRate, time.Now(), s.nonceTTL())
	if duplicate {
		// Backstop for a duplicate hello that raced past handleHello's
		// nonce-map check: never reserve twice. Busy sends the sender
		// back around; its retry finds the registered nonce and
		// reattaches.
		s.mu.Unlock()
		return reject(transport.RejectedBusy,
			fmt.Errorf("server: hello nonce %016x already holds a reservation", hello.Nonce))
	}
	if !admitted {
		avail := s.admission.Available()
		s.mu.Unlock()
		return nil, transport.Verdict{Code: transport.RejectedCapacity, Available: avail, Epoch: s.cfg.Epoch},
			fmt.Errorf("server: peak %.0f bps exceeds available %.0f bps", hello.PeakRate, avail)
	}
	s.nextID++
	st.id = s.nextID
	s.streams[st.id] = st
	if hello.Nonce != 0 {
		s.nonces.put(hello.Nonce, st)
	}
	if s.cfg.ResumeWindow > 0 {
		st.token = s.newTokenLocked()
		s.resumable[st.token] = st
	}
	avail := s.admission.Available()
	s.mu.Unlock()
	if s.journal != nil && st.token != 0 {
		// The admission fact must be durable before the verdict leaves:
		// a sender acting on an admission the journal forgot would be
		// rejected as unknown after a crash. The fsync runs outside s.mu
		// so concurrent admissions serialize only on the journal.
		rollback := func(cause error) (*stream, transport.Verdict, error) {
			s.mu.Lock()
			s.admission.ReleaseNonce(hello.Nonce, hello.PeakRate)
			delete(s.streams, st.id)
			if hello.Nonce != 0 {
				s.nonces.del(hello.Nonce)
			}
			delete(s.resumable, st.token)
			s.rejectedBusy++
			avail = s.admission.Available()
			s.mu.Unlock()
			return nil, transport.Verdict{Code: transport.RejectedBusy, Available: avail, Epoch: s.cfg.Epoch}, cause
		}
		seq, jerr := s.journal.Admitted(journal.StreamRecord{Token: st.token, Hello: *hello})
		if jerr != nil {
			return rollback(fmt.Errorf("server: admission not journalable: %w", jerr))
		}
		if s.cfg.Quorum != nil {
			// Hold the verdict until a replication quorum holds the
			// admission record (or the gate degrades to local-only
			// durability). A terminal gate error means the record's
			// replication fate is unknown and the server is dying: undo
			// the admission — including its journal record, best effort —
			// and send the sender back around rather than acknowledge a
			// commit a promoted follower may have never seen.
			if qerr := s.cfg.Quorum.WaitCommitted(s.ctx, seq); qerr != nil {
				if _, xerr := s.journal.Expired(st.token, hello.Nonce, journal.ExpireFailed); xerr != nil {
					s.cfg.Logf("smoothd: quorum rollback expiry for token %016x failed: %v", st.token, xerr)
				}
				return rollback(fmt.Errorf("server: admission quorum not reached: %w", qerr))
			}
		}
	}
	_, prefix := st.resumePoint() // empty hash: nothing accepted yet
	return st, transport.Verdict{
		Code: transport.Admitted, Available: avail, ResumeToken: st.token, PrefixFNV: prefix,
		Epoch: s.cfg.Epoch,
	}, nil
}

// nonceTTL bounds a nonce's life in the admission ledger. finish always
// releases, so the TTL is a leak backstop only — generous, so long
// streams keep their duplicate-hello protection for their whole life.
func (s *Server) nonceTTL() time.Duration {
	if ttl := 4 * s.cfg.ResumeWindow; ttl > 10*time.Minute {
		return ttl
	}
	return 10 * time.Minute
}

// tombstoneTTL bounds how long a completed stream answers late resumes
// with AlreadyComplete. It must comfortably cover the sender's resume
// window plus its backoff schedule.
func (s *Server) tombstoneTTL() time.Duration {
	if ttl := 2 * s.cfg.ResumeWindow; ttl > 30*time.Second {
		return ttl
	}
	return 30 * time.Second
}

// newTokenLocked draws an unguessable, unused, nonzero resume token.
// Caller holds s.mu.
func (s *Server) newTokenLocked() uint64 {
	var buf [8]byte
	for {
		if _, err := cryptorand.Read(buf[:]); err != nil {
			// crypto/rand failing is a broken platform; fall back to the
			// monotone id so the server still runs (tokens are then
			// guessable, which only weakens resume hijack resistance).
			return s.nextID<<32 | uint64(time.Now().UnixNano()&0xFFFFFFFF)
		}
		tok := binary.BigEndian.Uint64(buf[:])
		if tok == 0 {
			continue
		}
		if _, taken := s.resumable[tok]; taken {
			continue
		}
		// Rejection-sample until the token hashes to this shard on the
		// placement ring, so a later resume routes straight home
		// (expected draws = shard count).
		if s.cfg.OwnsToken != nil && !s.cfg.OwnsToken(tok) {
			continue
		}
		return tok
	}
}

// run drives an admitted stream: ingest on this goroutine, egress on a
// second. admitErr carries a verdict-write failure from handleHello.
func (s *Server) run(st *stream, admitErr error) error {
	if admitErr != nil {
		close(st.queue)
		return admitErr
	}
	egressDone := make(chan error, 1)
	go func() {
		egressDone <- st.runEgress(s.ctx, s.egress, s.cfg.Clock, s.cfg.TimeScale)
	}()
	ingestErr := st.runIngest(s.ctx, s)
	egressErr := <-egressDone
	if ingestErr != nil {
		return ingestErr
	}
	return egressErr
}

// finish releases the stream's reservation and records its outcome.
func (s *Server) finish(st *stream, err error) {
	ss := st.snapshot()
	s.mu.Lock()
	s.admission.ReleaseNonce(st.hello.Nonce, st.hello.PeakRate)
	delete(s.streams, st.id)
	if st.hello.Nonce != 0 {
		s.nonces.del(st.hello.Nonce)
	}
	if st.token != 0 {
		delete(s.resumable, st.token)
		if err == nil {
			// Tombstone the completed stream before s.mu is released: a
			// resume that finds the token gone from s.resumable
			// serialized after this critical section, so it always finds
			// either the live stream or the tombstone, never a gap.
			ttl := s.tombstoneTTL()
			s.tombstones.put(st.token, tombstone{
				fnv: ss.PayloadFNV, pictures: ss.Pictures,
				expires: time.Now().Add(ttl),
			}, ttl)
		}
	}
	if err != nil {
		s.failed++
	} else {
		s.completed++
	}
	s.faultTotals.add(ss.Faults)
	s.finished = append(s.finished, ss)
	if len(s.finished) > finishedKeep {
		s.finished = s.finished[1:]
	}
	if ss.Decisions > 0 && ss.DelayHeadroom < s.worstHeadroom {
		s.worstHeadroom = ss.DelayHeadroom
	}
	if ss.MaxDelay > ss.DelayBound+delayTolerance {
		s.delayViolations++
	}
	s.mu.Unlock()
	if err != nil && s.journal != nil && st.token != 0 && s.ctx.Err() == nil {
		// A terminal failure releases the reservation, so the journal
		// must forget the stream too — otherwise the next generation
		// would rehydrate a reservation nobody holds. Streams ended by
		// shutdown cancellation are deliberately NOT expired: they stay
		// journaled so the next generation recovers them parked.
		reason := journal.ExpireFailed
		if st.resumeWindowLapsed() {
			reason = journal.ExpireResumeWindow
		}
		if _, jerr := s.journal.Expired(st.token, st.hello.Nonce, reason); jerr != nil {
			s.cfg.Logf("smoothd: stream %d expiry journal write failed: %v", st.id, jerr)
		}
	}
	if err != nil {
		s.cfg.Logf("smoothd: stream %d from %s failed: %v", st.id, ss.Remote, err)
	} else {
		s.cfg.Logf("smoothd: stream %d from %s completed: %d pictures, peak %.0f bps",
			st.id, ss.Remote, ss.Pictures, ss.SessionPeak)
	}
}

// parkGauge moves the admission parked gauge as streams enter and leave
// the resume window.
func (s *Server) parkGauge(delta int) {
	s.mu.Lock()
	if delta > 0 {
		s.admission.Park()
	} else {
		s.admission.Unpark()
	}
	s.mu.Unlock()
}

// Draining reports whether the server has stopped admitting new
// sessions: Shutdown has begun (or the listener died). A draining
// server is alive but not ready — /healthz distinguishes the two.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// FinishedStreams returns snapshots of the most recently finished
// streams (up to finishedKeep), oldest first.
func (s *Server) FinishedStreams() []StreamSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]StreamSnapshot, len(s.finished))
	copy(out, s.finished)
	return out
}

// link serializes all streams' paced writes onto the shared egress sink
// and accounts the bits that crossed it. When the sink supports write
// deadlines (a net.Conn egress), each write is bounded by the server's
// WriteTimeout so a wedged downstream cannot stall every stream forever.
type link struct {
	mu      sync.Mutex
	w       io.Writer
	d       interface{ SetWriteDeadline(time.Time) error }
	timeout time.Duration
	bits    int64
}

func newLink(w io.Writer, timeout time.Duration) *link {
	l := &link{w: w, timeout: timeout}
	if d, ok := w.(interface{ SetWriteDeadline(time.Time) error }); ok {
		l.d = d
	}
	return l
}

func (l *link) write(p []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.d != nil && l.timeout > 0 {
		if err := l.d.SetWriteDeadline(time.Now().Add(l.timeout)); err != nil {
			return fmt.Errorf("server: arming egress write deadline: %w", err)
		}
	}
	if _, err := l.w.Write(p); err != nil {
		return err
	}
	l.bits += int64(len(p)) * 8
	return nil
}

func (l *link) totalBits() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.bits
}
