// Package journal is smoothd's write-ahead log: an append-only,
// CRC-framed, fsync-on-commit record of the exactly-once session facts
// — stream admitted, watermark advanced, stream completed, state
// expired — so the nonce ledger, admission reservations, parked-stream
// table, and completion tombstones survive a server crash. PR 4 made
// the session protocol exactly-once in memory; this package extends the
// state machine across process death: a ResumableSender that redials
// after a crash finds its stream parked at the journaled watermark (or
// tombstoned with its final hash) instead of rejected as unknown.
//
// Layout: the journal directory holds numbered segments
// (seg-00000001.wal …), each starting with a magic header and holding
// framed records
//
//	kind (1) | bodyLen (4) | body | crc32 (4)
//
// where the CRC covers kind|len|body. Records that commit a fact a
// peer may act on (admission, completion, expiry) are fsynced before
// the corresponding verdict or ack leaves the server; watermark records
// are coalesced per stream and flushed on a timer, so the per-picture
// hot path never waits on a disk. Losing the last flush interval of
// watermarks is safe: the sender replays from an older watermark and
// the server re-accepts idempotently.
//
// Recovery replays segments in order, verifying every CRC. A torn tail
// — a record cut short by the crash — is truncated deterministically:
// the scan stops at the first record that fails length or CRC checks,
// and the active segment is physically cut back to the last good
// record. Replay is idempotent (admits never resurrect tombstoned
// streams, watermarks only advance, completions overwrite), which makes
// every crash window safe, including a crash during compaction that
// leaves duplicate records in both an old segment and its snapshot.
package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"sort"
	"strings"
	"sync"
	"time"

	"mpegsmooth/internal/mpeg"
	"mpegsmooth/internal/transport"
)

// Record kinds.
const (
	kindAdmit     byte = 'A'
	kindWatermark byte = 'W'
	kindComplete  byte = 'C'
	kindExpire    byte = 'X'
	kindEpoch     byte = 'E'
)

// segMagic opens every segment file; a version bump invalidates old
// journals loudly instead of misparsing them.
var segMagic = []byte("MSJ1")

// maxRecordBody bounds a record body during scanning, so a corrupt
// length field reads as a torn record rather than a giant allocation.
const maxRecordBody = 4096

// maxHashState bounds the persisted prefix-hash state (SHA-256 chain =
// 32 bytes; FNV = 8).
const maxHashState = 64

// DefaultSegmentBytes rotates (and compacts) the active segment once it
// exceeds this size.
const DefaultSegmentBytes = 1 << 20

// DefaultFlushInterval batches watermark records.
const DefaultFlushInterval = 25 * time.Millisecond

// ExpireReason says why journaled state was dropped.
type ExpireReason byte

const (
	// ExpireFailed: the stream failed terminally (its reservation was
	// released).
	ExpireFailed ExpireReason = iota
	// ExpireResumeWindow: a parked stream's resume window lapsed with no
	// reconnect.
	ExpireResumeWindow
	// ExpireTombstone: a completion tombstone aged out.
	ExpireTombstone
)

// StreamRecord is the journaled state of one live (possibly parked)
// stream: everything recovery needs to rebuild the session — the hello
// (bit-exact, so nonce dedup still compares equal), the resume token,
// the accept watermark, and the prefix hash state at that watermark.
type StreamRecord struct {
	Token     uint64
	Hello     transport.StreamHello
	Watermark int
	HashState []byte
}

// TombstoneRecord is the journaled state of a completed stream: enough
// to answer a late resume with a hash-verified AlreadyComplete verdict.
type TombstoneRecord struct {
	Token     uint64
	Nonce     uint64
	Pictures  int
	HashState []byte
	Expires   time.Time
}

// State is the replayed journal: live streams and completion tombstones
// by resume token, plus the highest primary epoch the journal has
// witnessed (see the epoch record kind).
type State struct {
	Streams    map[uint64]*StreamRecord
	Tombstones map[uint64]*TombstoneRecord
	// Epoch is the highest epoch record replayed: the fencing term of
	// the last primary whose authority this journal acknowledged. Zero
	// means the journal predates any promotion.
	Epoch uint64
}

func newState() State {
	return State{Streams: map[uint64]*StreamRecord{}, Tombstones: map[uint64]*TombstoneRecord{}}
}

// clone deep-copies the state so callers can mutate their view.
func (s State) clone() State {
	out := newState()
	out.Epoch = s.Epoch
	for k, v := range s.Streams {
		cp := *v
		cp.HashState = append([]byte(nil), v.HashState...)
		out.Streams[k] = &cp
	}
	for k, v := range s.Tombstones {
		cp := *v
		cp.HashState = append([]byte(nil), v.HashState...)
		out.Tombstones[k] = &cp
	}
	return out
}

// apply folds one record into the state. The rules make replay
// idempotent under arbitrary duplication (the crash-during-compaction
// shape): admits never overwrite or resurrect, watermarks only advance,
// completions and expiries are absorbing.
func (s *State) apply(r Record) {
	switch r.Kind {
	case kindAdmit:
		if _, dead := s.Tombstones[r.Stream.Token]; dead {
			return
		}
		if _, live := s.Streams[r.Stream.Token]; live {
			return
		}
		cp := r.Stream
		cp.HashState = append([]byte(nil), r.Stream.HashState...)
		s.Streams[cp.Token] = &cp
	case kindWatermark:
		st, ok := s.Streams[r.Token]
		if !ok || r.Watermark <= st.Watermark {
			return
		}
		st.Watermark = r.Watermark
		st.HashState = append([]byte(nil), r.HashState...)
	case kindComplete:
		delete(s.Streams, r.Tomb.Token)
		cp := r.Tomb
		cp.HashState = append([]byte(nil), r.Tomb.HashState...)
		s.Tombstones[cp.Token] = &cp
	case kindExpire:
		if r.Reason == ExpireTombstone {
			delete(s.Tombstones, r.Token)
		} else {
			delete(s.Streams, r.Token)
		}
	case kindEpoch:
		// Epochs are monotone: a duplicate or stale epoch record (replay,
		// compaction overlap) never winds the term backwards.
		if r.Epoch > s.Epoch {
			s.Epoch = r.Epoch
		}
	}
}

// Record is one decoded journal entry. Only the fields for its Kind are
// meaningful.
type Record struct {
	Kind      byte
	Stream    StreamRecord    // kindAdmit
	Token     uint64          // kindWatermark, kindExpire
	Watermark int             // kindWatermark
	HashState []byte          // kindWatermark
	Tomb      TombstoneRecord // kindComplete
	Nonce     uint64          // kindExpire
	Reason    ExpireReason    // kindExpire
	Epoch     uint64          // kindEpoch
}

// encode frames a record body: kind | len | body | crc.
func encodeFrame(kind byte, body []byte) []byte {
	buf := make([]byte, 0, 9+len(body))
	buf = append(buf, kind)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(body)))
	buf = append(buf, body...)
	return binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
}

func encodeAdmit(rec StreamRecord) []byte {
	h := rec.Hello
	body := make([]byte, 0, 64+len(rec.HashState))
	body = binary.BigEndian.AppendUint64(body, rec.Token)
	body = binary.BigEndian.AppendUint64(body, h.Nonce)
	body = binary.BigEndian.AppendUint64(body, math.Float64bits(h.Tau))
	body = binary.BigEndian.AppendUint16(body, uint16(h.GOP.N))
	body = binary.BigEndian.AppendUint16(body, uint16(h.GOP.M))
	body = binary.BigEndian.AppendUint16(body, uint16(h.K))
	body = binary.BigEndian.AppendUint64(body, math.Float64bits(h.D))
	body = binary.BigEndian.AppendUint32(body, uint32(h.Pictures))
	body = binary.BigEndian.AppendUint64(body, math.Float64bits(h.PeakRate))
	body = append(body, byte(h.Integrity))
	return encodeFrame(kindAdmit, body)
}

func encodeWatermark(token uint64, mark int, state []byte) []byte {
	body := make([]byte, 0, 13+len(state))
	body = binary.BigEndian.AppendUint64(body, token)
	body = binary.BigEndian.AppendUint32(body, uint32(mark))
	body = append(body, byte(len(state)))
	body = append(body, state...)
	return encodeFrame(kindWatermark, body)
}

func encodeComplete(rec TombstoneRecord) []byte {
	body := make([]byte, 0, 29+len(rec.HashState))
	body = binary.BigEndian.AppendUint64(body, rec.Token)
	body = binary.BigEndian.AppendUint64(body, rec.Nonce)
	body = binary.BigEndian.AppendUint32(body, uint32(rec.Pictures))
	body = binary.BigEndian.AppendUint64(body, uint64(rec.Expires.UnixNano()))
	body = append(body, byte(len(rec.HashState)))
	body = append(body, rec.HashState...)
	return encodeFrame(kindComplete, body)
}

func encodeExpire(token, nonce uint64, reason ExpireReason) []byte {
	body := make([]byte, 0, 17)
	body = binary.BigEndian.AppendUint64(body, token)
	body = binary.BigEndian.AppendUint64(body, nonce)
	body = append(body, byte(reason))
	return encodeFrame(kindExpire, body)
}

func encodeEpoch(epoch uint64) []byte {
	body := make([]byte, 0, 8)
	body = binary.BigEndian.AppendUint64(body, epoch)
	return encodeFrame(kindEpoch, body)
}

// decodeBody interprets a CRC-verified record body.
func decodeBody(kind byte, body []byte) (Record, error) {
	bad := func(format string, a ...any) (Record, error) {
		return Record{}, fmt.Errorf("journal: %c record "+format, append([]any{kind}, a...)...)
	}
	switch kind {
	case kindAdmit:
		if len(body) != 51 {
			return bad("body %d bytes, want 51", len(body))
		}
		rec := StreamRecord{
			Token: binary.BigEndian.Uint64(body[0:8]),
			Hello: transport.StreamHello{
				Nonce: binary.BigEndian.Uint64(body[8:16]),
				Tau:   math.Float64frombits(binary.BigEndian.Uint64(body[16:24])),
				GOP: mpeg.GOP{
					N: int(binary.BigEndian.Uint16(body[24:26])),
					M: int(binary.BigEndian.Uint16(body[26:28])),
				},
				K:         int(binary.BigEndian.Uint16(body[28:30])),
				D:         math.Float64frombits(binary.BigEndian.Uint64(body[30:38])),
				Pictures:  int(binary.BigEndian.Uint32(body[38:42])),
				PeakRate:  math.Float64frombits(binary.BigEndian.Uint64(body[42:50])),
				Integrity: transport.IntegrityMode(body[50]),
			},
		}
		if rec.Token == 0 {
			return bad("zero token")
		}
		if err := rec.Hello.Validate(); err != nil {
			return bad("hello: %v", err)
		}
		return Record{Kind: kind, Stream: rec}, nil
	case kindWatermark:
		if len(body) < 13 {
			return bad("body %d bytes, want >= 13", len(body))
		}
		n := int(body[12])
		if n > maxHashState || len(body) != 13+n {
			return bad("state length %d in %d-byte body", n, len(body))
		}
		return Record{
			Kind:      kind,
			Token:     binary.BigEndian.Uint64(body[0:8]),
			Watermark: int(binary.BigEndian.Uint32(body[8:12])),
			HashState: append([]byte(nil), body[13:13+n]...),
		}, nil
	case kindComplete:
		if len(body) < 29 {
			return bad("body %d bytes, want >= 29", len(body))
		}
		n := int(body[28])
		if n > maxHashState || len(body) != 29+n {
			return bad("state length %d in %d-byte body", n, len(body))
		}
		return Record{Kind: kind, Tomb: TombstoneRecord{
			Token:     binary.BigEndian.Uint64(body[0:8]),
			Nonce:     binary.BigEndian.Uint64(body[8:16]),
			Pictures:  int(binary.BigEndian.Uint32(body[16:20])),
			Expires:   time.Unix(0, int64(binary.BigEndian.Uint64(body[20:28]))),
			HashState: append([]byte(nil), body[29:29+n]...),
		}}, nil
	case kindExpire:
		if len(body) != 17 {
			return bad("body %d bytes, want 17", len(body))
		}
		reason := ExpireReason(body[16])
		if reason > ExpireTombstone {
			return bad("unknown reason %d", body[16])
		}
		return Record{
			Kind:   kind,
			Token:  binary.BigEndian.Uint64(body[0:8]),
			Nonce:  binary.BigEndian.Uint64(body[8:16]),
			Reason: reason,
		}, nil
	case kindEpoch:
		if len(body) != 8 {
			return bad("body %d bytes, want 8", len(body))
		}
		epoch := binary.BigEndian.Uint64(body)
		if epoch == 0 {
			return bad("zero epoch")
		}
		return Record{Kind: kind, Epoch: epoch}, nil
	}
	return Record{}, fmt.Errorf("journal: unknown record kind %#02x", kind)
}

// ScanSegment parses one segment's bytes. It returns every record up to
// the first damage, plus valid — the byte offset of the last good
// record's end (the deterministic truncation point). err is non-nil
// when damage was found; a fully clean segment returns valid ==
// len(data) and a nil error. Scanning data[:valid] again yields the
// identical records and no error: truncation is a fixed point.
func ScanSegment(data []byte) (recs []Record, valid int, err error) {
	if len(data) < len(segMagic) {
		return nil, 0, errors.New("journal: segment shorter than its magic")
	}
	if string(data[:len(segMagic)]) != string(segMagic) {
		return nil, 0, errors.New("journal: bad segment magic")
	}
	off := len(segMagic)
	for off < len(data) {
		rec, n, perr := ParseFrame(data[off:])
		if perr != nil {
			return recs, off, fmt.Errorf("journal: record at %d: %w", off, perr)
		}
		recs = append(recs, rec)
		off += n
	}
	return recs, off, nil
}

// ParseFrame decodes the single framed record at the front of b,
// verifying its length bounds and CRC, and returns the record plus its
// encoded size. It is the unit the segment scanner and the replication
// feed share: a feed consumer parses each published frame with it and
// must always consume the frame exactly.
func ParseFrame(b []byte) (Record, int, error) {
	if len(b) < 9 {
		return Record{}, 0, errors.New("torn record header")
	}
	kind := b[0]
	n := int(binary.BigEndian.Uint32(b[1:5]))
	if n > maxRecordBody {
		return Record{}, 0, fmt.Errorf("declares %d-byte body", n)
	}
	if len(b) < 9+n {
		return Record{}, 0, errors.New("torn record body")
	}
	sum := crc32.ChecksumIEEE(b[:5+n])
	if got := binary.BigEndian.Uint32(b[5+n : 9+n]); got != sum {
		return Record{}, 0, fmt.Errorf("crc %08x, want %08x", got, sum)
	}
	rec, derr := decodeBody(kind, b[5:5+n])
	if derr != nil {
		return Record{}, 0, derr
	}
	return rec, 9 + n, nil
}

// Config parameterizes a Journal.
type Config struct {
	// Dir is the journal directory (used when FS is nil).
	Dir string
	// FS overrides the filesystem (tests: MemFS, FaultFS, CrashFS).
	FS FS
	// SegmentBytes triggers rotation + compaction past this active
	// segment size (default DefaultSegmentBytes).
	SegmentBytes int64
	// FlushInterval batches coalesced watermark records (default
	// DefaultFlushInterval; < 0 disables the background flusher — tests
	// then call Flush explicitly).
	FlushInterval time.Duration
	// Logf, when set, receives repair and replay notes.
	Logf func(format string, args ...any)
}

// Stats counts journal activity for the ops endpoint.
type Stats struct {
	Segments            int   `json:"segments"`
	ActiveSegmentBytes  int64 `json:"active_segment_bytes"`
	Appends             int64 `json:"appends"`
	AppendedBytes       int64 `json:"appended_bytes"`
	Fsyncs              int64 `json:"fsyncs"`
	WatermarksCoalesced int64 `json:"watermarks_coalesced"`
	WatermarkBatches    int64 `json:"watermark_batches"`
	Rotations           int64 `json:"rotations"`
	ReplayedRecords     int   `json:"replayed_records"`
	ReplayedSegments    int   `json:"replayed_segments"`
	TruncatedTailBytes  int64 `json:"truncated_tail_bytes"`
	AppendErrors        int64 `json:"append_errors"`
	LiveStreams         int   `json:"live_streams"`
	LiveTombstones      int   `json:"live_tombstones"`
}

// wmEntry is one coalesced pending watermark.
type wmEntry struct {
	mark  int
	state []byte
}

// Journal is an open write-ahead log. All methods are safe for
// concurrent use.
type Journal struct {
	cfg Config
	fs  FS

	mu         sync.Mutex
	active     File
	activeName string
	activeSize int64
	seq        uint64
	segments   []string
	state      State
	recovered  State
	dirty      map[uint64]wmEntry
	stats      Stats
	broken     bool
	closed     bool

	// The record feed (see tail.go): committed frames are published to
	// subscribers under j.mu, and the cursor counts what was published.
	subs     map[uint64]chan []byte
	nextSub  uint64
	pubRecs  uint64
	pubBytes uint64

	flushStop chan struct{}
	flushDone chan struct{}
}

func (c *Config) withDefaults() (Config, error) {
	cfg := *c
	if cfg.FS == nil {
		if cfg.Dir == "" {
			return cfg, errors.New("journal: Config needs Dir or FS")
		}
		fs, err := DirFS(cfg.Dir)
		if err != nil {
			return cfg, err
		}
		cfg.FS = fs
	}
	if cfg.SegmentBytes <= 0 {
		cfg.SegmentBytes = DefaultSegmentBytes
	}
	if cfg.FlushInterval == 0 {
		cfg.FlushInterval = DefaultFlushInterval
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	return cfg, nil
}

func segName(seq uint64) string { return fmt.Sprintf("seg-%08d.wal", seq) }

func parseSegName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "seg-") || !strings.HasSuffix(name, ".wal") {
		return 0, false
	}
	var seq uint64
	if _, err := fmt.Sscanf(name, "seg-%08d.wal", &seq); err != nil {
		return 0, false
	}
	return seq, true
}

// Open replays the journal directory, truncates any torn tail in the
// final segment, compacts the replayed state into a fresh snapshot
// segment (bounding both recovery time and disk growth), and returns
// the journal ready for appends. The replayed state is available via
// State.
func Open(cfg Config) (*Journal, error) {
	full, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	j := &Journal{
		cfg:   full,
		fs:    full.FS,
		state: newState(),
		dirty: map[uint64]wmEntry{},
		subs:  map[uint64]chan []byte{},
	}
	if err := j.replay(); err != nil {
		return nil, err
	}
	j.recovered = j.state.clone()
	// Startup compaction: everything live goes into one fresh segment,
	// and the (possibly torn, possibly duplicated) history is deleted.
	j.mu.Lock()
	err = j.rotateLocked()
	j.mu.Unlock()
	if err != nil {
		return nil, err
	}
	if full.FlushInterval > 0 {
		j.flushStop = make(chan struct{})
		j.flushDone = make(chan struct{})
		go j.flusher(full.FlushInterval, j.flushStop, j.flushDone)
	}
	return j, nil
}

// replay loads every segment in sequence order into j.state.
func (j *Journal) replay() error {
	names, err := j.fs.ReadDir()
	if err != nil {
		return fmt.Errorf("journal: listing segments: %w", err)
	}
	type seg struct {
		name string
		seq  uint64
	}
	var segs []seg
	for _, n := range names {
		if s, ok := parseSegName(n); ok {
			segs = append(segs, seg{name: n, seq: s})
		}
	}
	sort.Slice(segs, func(a, b int) bool { return segs[a].seq < segs[b].seq })
	for i, sg := range segs {
		data, err := j.fs.ReadFile(sg.name)
		if err != nil {
			return fmt.Errorf("journal: reading %s: %w", sg.name, err)
		}
		if len(data) == 0 {
			// A crash between segment creation and the magic write leaves
			// an empty file: nothing to replay.
			j.cfg.Logf("journal: %s is empty (crash before header); skipping", sg.name)
			continue
		}
		recs, valid, scanErr := ScanSegment(data)
		if scanErr != nil {
			// Damage. In the final segment this is the expected torn tail
			// of a crash mid-append; anywhere else it still truncates the
			// replay of that segment at the last good record — the
			// idempotent records after it (in later segments or the
			// snapshot) reconstruct what can be reconstructed.
			torn := int64(len(data) - valid)
			j.stats.TruncatedTailBytes += torn
			j.cfg.Logf("journal: %s: %v; dropping %d-byte tail (%d records kept)",
				sg.name, scanErr, torn, len(recs))
			if i == len(segs)-1 && valid > 0 {
				if terr := j.fs.Truncate(sg.name, int64(valid)); terr != nil {
					return fmt.Errorf("journal: truncating torn tail of %s: %w", sg.name, terr)
				}
			}
		}
		for _, r := range recs {
			j.state.apply(r)
		}
		j.stats.ReplayedRecords += len(recs)
		j.stats.ReplayedSegments++
		j.segments = append(j.segments, sg.name)
		if sg.seq > j.seq {
			j.seq = sg.seq
		}
	}
	return nil
}

// State returns the state recovered at Open — what the server rebuilds
// its ledgers from.
func (j *Journal) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.recovered.clone()
}

// Stats returns a snapshot of the journal counters.
func (j *Journal) Stats() Stats {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := j.stats
	s.Segments = len(j.segments)
	s.ActiveSegmentBytes = j.activeSize
	s.LiveStreams = len(j.state.Streams)
	s.LiveTombstones = len(j.state.Tombstones)
	return s
}

// Admitted commits a stream admission: fsynced before the caller sends
// its admission verdict, so a verdict the sender acts on is never
// forgotten by a crash. The returned sequence is the record's position
// on the publish feed — the value a replication quorum acknowledges.
func (j *Journal) Admitted(rec StreamRecord) (uint64, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.appendLocked(encodeAdmit(rec), true); err != nil {
		return 0, err
	}
	j.state.apply(Record{Kind: kindAdmit, Stream: rec})
	return j.pubRecs, nil
}

// Watermark coalesces a stream's accept watermark and prefix-hash state
// for the next flush. It never blocks on the disk — the per-picture hot
// path stays fast — so a crash may lose the last flush interval of
// progress, which recovery absorbs by parking the stream at the older
// watermark (the sender replays the difference, idempotently).
func (j *Journal) Watermark(token uint64, mark int, state []byte) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed || j.broken {
		return
	}
	j.dirty[token] = wmEntry{mark: mark, state: state}
	j.stats.WatermarksCoalesced++
}

// Completed commits a stream completion: fsynced before the completion
// ack is sent, so an acked stream is always answerable as
// AlreadyComplete after a crash. The returned sequence is the record's
// position on the publish feed.
func (j *Journal) Completed(rec TombstoneRecord) (uint64, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	delete(j.dirty, rec.Token) // superseded
	if err := j.appendLocked(encodeComplete(rec), true); err != nil {
		return 0, err
	}
	j.state.apply(Record{Kind: kindComplete, Tomb: rec})
	return j.pubRecs, nil
}

// Expired commits the release of journaled state: a failed stream, a
// lapsed resume window, or an aged-out tombstone. The returned sequence
// is the record's position on the publish feed.
func (j *Journal) Expired(token, nonce uint64, reason ExpireReason) (uint64, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if reason != ExpireTombstone {
		delete(j.dirty, token)
	}
	if err := j.appendLocked(encodeExpire(token, nonce, reason), true); err != nil {
		return 0, err
	}
	j.state.apply(Record{Kind: kindExpire, Token: token, Nonce: nonce, Reason: reason})
	return j.pubRecs, nil
}

// Epoch reports the highest primary epoch the journal has witnessed —
// the fencing term recovery and replication compare against.
func (j *Journal) Epoch() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state.Epoch
}

// AppendEpoch commits a primary epoch: fsynced before the new primary
// serves anything stamped with it, so a node that acknowledged a term
// can never forget it and accept a lower one after a restart. Appending
// an epoch at or below the current one is a no-op (epochs are monotone).
func (j *Journal) AppendEpoch(epoch uint64) (uint64, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if epoch <= j.state.Epoch {
		return j.pubRecs, nil
	}
	if err := j.appendLocked(encodeEpoch(epoch), true); err != nil {
		return 0, err
	}
	j.state.apply(Record{Kind: kindEpoch, Epoch: epoch})
	return j.pubRecs, nil
}

// Flush appends and fsyncs all coalesced watermarks now.
func (j *Journal) Flush() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.flushLocked()
}

func (j *Journal) flushLocked() error {
	if len(j.dirty) == 0 {
		return nil
	}
	wrote := false
	for token, wm := range j.dirty {
		if err := j.appendLocked(encodeWatermark(token, wm.mark, wm.state), false); err != nil {
			return err
		}
		j.state.apply(Record{Kind: kindWatermark, Token: token, Watermark: wm.mark, HashState: wm.state})
		wrote = true
	}
	j.dirty = map[uint64]wmEntry{}
	if wrote {
		if err := j.syncLocked(); err != nil {
			return err
		}
		j.stats.WatermarkBatches++
	}
	return nil
}

// Compact rewrites live state into a fresh snapshot segment and deletes
// the old ones.
func (j *Journal) Compact() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.flushLocked(); err != nil {
		return err
	}
	return j.rotateLocked()
}

// Close flushes pending watermarks, syncs, and closes the journal.
func (j *Journal) Close() error {
	j.stopFlusher()
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	err := j.flushLocked()
	j.closed = true
	j.closeSubsLocked()
	if j.active != nil {
		if cerr := j.active.Close(); err == nil {
			err = cerr
		}
		j.active = nil
	}
	return err
}

// Abandon closes the journal crash-style: no flush, no sync — pending
// watermarks are dropped exactly as a real crash would drop them. The
// kill-and-restart harness uses it to make an in-process "SIGKILL"
// honest.
func (j *Journal) Abandon() {
	j.stopFlusher()
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return
	}
	j.closed = true
	j.dirty = map[uint64]wmEntry{}
	j.closeSubsLocked()
	if j.active != nil {
		j.active.Close()
		j.active = nil
	}
}

func (j *Journal) stopFlusher() {
	j.mu.Lock()
	stop, done := j.flushStop, j.flushDone
	j.flushStop = nil
	j.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}

func (j *Journal) flusher(interval time.Duration, stop, done chan struct{}) {
	defer close(done)
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			if err := j.Flush(); err != nil {
				j.cfg.Logf("journal: watermark flush: %v", err)
			}
		case <-stop:
			return
		}
	}
}

// appendLocked writes one framed record to the active segment and, when
// syncNow, fsyncs it. On failure the segment is repaired by truncating
// back to the pre-append offset, so a torn in-flight record can never
// be followed by live appends (which replay would then lose). Caller
// holds j.mu.
func (j *Journal) appendLocked(frame []byte, syncNow bool) error {
	if j.closed {
		return errors.New("journal: closed")
	}
	if j.broken {
		return errors.New("journal: broken (unrepairable append failure)")
	}
	if j.activeSize > j.cfg.SegmentBytes {
		if err := j.rotateLocked(); err != nil {
			return err
		}
	}
	off := j.activeSize
	if _, err := j.active.Write(frame); err != nil {
		j.stats.AppendErrors++
		j.repairLocked(off)
		return fmt.Errorf("journal: append: %w", err)
	}
	j.activeSize += int64(len(frame))
	j.stats.Appends++
	j.stats.AppendedBytes += int64(len(frame))
	if syncNow {
		if err := j.syncLocked(); err != nil {
			j.stats.AppendErrors++
			j.repairLocked(off)
			return err
		}
	}
	j.publishLocked(frame)
	return nil
}

func (j *Journal) syncLocked() error {
	if err := j.active.Sync(); err != nil {
		return fmt.Errorf("journal: fsync: %w", err)
	}
	j.stats.Fsyncs++
	return nil
}

// repairLocked truncates the active segment back to off after a failed
// append, discarding whatever partial bytes landed. If even that fails,
// the journal is broken: appends stop, but the on-disk prefix up to the
// last successful commit stays fully replayable.
func (j *Journal) repairLocked(off int64) {
	if err := j.fs.Truncate(j.activeName, off); err != nil {
		j.broken = true
		j.cfg.Logf("journal: repair truncate of %s to %d failed (%v); journal is now read-only", j.activeName, off, err)
		return
	}
	j.activeSize = off
	j.cfg.Logf("journal: truncated %s back to %d after failed append", j.activeName, off)
}

// rotateLocked opens the next segment, snapshots live state into it,
// syncs it, and deletes every older segment. Idempotent replay keeps
// every crash window safe: before the sync, the new segment simply
// loses the race and old segments still hold everything; after the
// sync, duplicates between old and new segments fold to the same state;
// a failed remove only leaves harmless duplicates behind. Caller holds
// j.mu.
func (j *Journal) rotateLocked() error {
	j.seq++
	name := segName(j.seq)
	f, err := j.fs.Create(name)
	if err != nil {
		return fmt.Errorf("journal: creating segment %s: %w", name, err)
	}
	// Tombstones carry their own journaled expiry; compaction drops the
	// dead ones instead of copying them forward, so completed-stream
	// history cannot grow the snapshot without bound.
	now := time.Now()
	for tok, tb := range j.state.Tombstones {
		if !tb.Expires.IsZero() && now.After(tb.Expires) {
			delete(j.state.Tombstones, tok)
		}
	}
	buf := j.snapshotLocked()
	if _, err := f.Write(buf); err != nil {
		f.Close()
		j.fs.Remove(name)
		return fmt.Errorf("journal: writing snapshot %s: %w", name, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		j.fs.Remove(name)
		return fmt.Errorf("journal: syncing snapshot %s: %w", name, err)
	}
	j.stats.Fsyncs++
	if j.active != nil {
		j.active.Close()
	}
	for _, old := range j.segments {
		if err := j.fs.Remove(old); err != nil {
			// Harmless: replay is idempotent, so a lingering old segment
			// only costs startup time. Keep it listed for the next try.
			j.cfg.Logf("journal: could not remove %s: %v (will retry at next compaction)", old, err)
		}
	}
	j.active = f
	j.activeName = name
	j.activeSize = int64(len(buf))
	j.segments = []string{name}
	j.stats.Rotations++
	return nil
}

// snapshotLocked encodes the live state as one segment image: the same
// bytes a rotation writes, and the base a Follow subscriber starts
// from. Expired tombstones are skipped (not pruned — rotation owns the
// pruning). Caller holds j.mu.
func (j *Journal) snapshotLocked() []byte {
	now := time.Now()
	var buf []byte
	buf = append(buf, segMagic...)
	// The epoch leads the snapshot so a follower resyncing from it
	// adopts the primary's term before any session fact.
	if j.state.Epoch > 0 {
		buf = append(buf, encodeEpoch(j.state.Epoch)...)
	}
	for _, st := range j.state.Streams {
		buf = append(buf, encodeAdmit(*st)...)
		if st.Watermark > 0 {
			buf = append(buf, encodeWatermark(st.Token, st.Watermark, st.HashState)...)
		}
	}
	for _, tb := range j.state.Tombstones {
		if !tb.Expires.IsZero() && now.After(tb.Expires) {
			continue
		}
		buf = append(buf, encodeComplete(*tb)...)
	}
	return buf
}
