package main

import (
	"os"
	"path/filepath"
	"testing"

	"mpegsmooth"
)

func TestRunBuiltinSequence(t *testing.T) {
	if err := run("", "driving1", 54, 1, 1, 0, 0.2, "basic", "", false, false, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunMovingVariantWithCompare(t *testing.T) {
	if err := run("", "backyard", 48, 1, 1, 12, 0.2, "moving", "", true, true, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunPolicyFlag(t *testing.T) {
	// -policy wins over -variant; every grammar form runs end to end.
	for _, policy := range []string{"basic", "moving-average", "min-var", "capped:1e9"} {
		if err := run("", "tennis", 27, 1, 1, 9, 0.2, "basic", policy, false, false, ""); err != nil {
			t.Fatalf("policy %q: %v", policy, err)
		}
	}
}

func TestRunBindingCapReportsViolations(t *testing.T) {
	// A cap far below the mean rate forces delay-bound violations; the
	// command must report them instead of failing.
	if err := run("", "driving1", 54, 1, 1, 9, 0.2, "basic", "capped:1e5", false, false, ""); err != nil {
		t.Fatalf("binding cap should report, not fail: %v", err)
	}
}

func TestRunFromFile(t *testing.T) {
	tr, err := mpegsmooth.Tennis(27, 1)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "t.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteCSV(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := run(path, "", 0, 0, 1, 9, 0.2, "basic", "", false, false, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunWritesScheduleCSV(t *testing.T) {
	out := filepath.Join(t.TempDir(), "sched.csv")
	if err := run("", "tennis", 27, 1, 1, 9, 0.2, "basic", "", false, false, out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("empty schedule CSV")
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	if err := run("x.csv", "driving1", 10, 1, 1, 9, 0.2, "basic", "", false, false, ""); err == nil {
		t.Fatal("-in and -seq together should fail")
	}
	if err := run("", "", 10, 1, 1, 9, 0.2, "basic", "", false, false, ""); err == nil {
		t.Fatal("neither -in nor -seq should fail")
	}
	if err := run("", "driving1", 54, 1, 1, 9, 0.2, "wat", "", false, false, ""); err == nil {
		t.Fatal("unknown variant should fail")
	}
	if err := run("", "driving1", 54, 1, 1, 9, 0.2, "basic", "fastest", false, false, ""); err == nil {
		t.Fatal("unknown policy should fail")
	}
	if err := run("", "driving1", 54, 1, 1, 9, 0.2, "basic", "capped:-2", false, false, ""); err == nil {
		t.Fatal("negative cap should fail")
	}
	if err := run("", "driving1", 54, 1, 1, 9, -0.5, "basic", "", false, false, ""); err == nil {
		t.Fatal("negative D should fail")
	}
	if err := run("/nonexistent/x.csv", "", 0, 0, 1, 9, 0.2, "basic", "", false, false, ""); err == nil {
		t.Fatal("missing file should fail")
	}
}
