package netsim

import (
	"fmt"
	"math"

	"mpegsmooth/internal/metrics"
)

// The fluid layer trades cell granularity for scale: a source advances
// one rate segment per event and the multiplexer accounts whole
// intervals analytically (closed-form buffer drain and overflow between
// events), so event count scales with rate breakpoints instead of
// cells. A thousand smoothed streams cost thousands of events per
// second of simulated time, not millions.

// rateSink receives piecewise-constant rate updates from a stream's
// upstream element (its source, or the shaper in front of the mux).
type rateSink interface {
	setRate(id int, t, rate float64)
}

// FluidSourceStats is one stream's fluid cell accounting.
type FluidSourceStats struct {
	// ArrivedCells and LostCells are fluid (fractional) cell counts at
	// the multiplexer, after any shaping.
	ArrivedCells float64
	LostCells    float64
	// MaxShapingDelay is the worst queueing delay the stream's shaper
	// imposed (0 without a shaper): max backlog over sustained rate.
	MaxShapingDelay float64
}

// FluidResult is the outcome of a fluid simulation.
type FluidResult struct {
	ArrivedCells  float64
	ServedCells   float64
	LostCells     float64
	BufferedCells float64 // left in the buffer at the horizon
	MaxQueueCells float64 // buffer high-water mark
	Events        int     // events the engine fired
	Sources       []FluidSourceStats
}

// LossProbability returns LostCells/ArrivedCells (0 when nothing
// arrived).
func (r *FluidResult) LossProbability() float64 {
	if r.ArrivedCells <= 0 {
		return 0
	}
	return r.LostCells / r.ArrivedCells
}

// FluidMux is the batched-analytic finite-buffer multiplexer. Between
// rate-change events the aggregate inflow R is constant, so the buffer
// trajectory is piecewise linear: it fills at R-C toward the buffer
// bound, overflows at R-C once there, and drains at C-R toward empty —
// all accounted in closed form, with no events of its own.
//
// Per-source loss attribution is O(1) per rate change: the mux keeps a
// cumulative loss weight W(t) = ∫ overflow/R dt (loss per unit inflow
// rate); a stream holding rate r over [t0,t1) lost exactly
// r·(W(t1)-W(t0)) bits of it.
type FluidMux struct {
	capacity float64 // link rate, bits/s
	bufBits  float64 // waiting-buffer bound, bits

	level   float64 // buffer occupancy, bits
	lastT   float64 // time of last integration, seconds
	sumRate float64 // aggregate inflow, bits/s

	arrived  float64 // bits
	served   float64 // bits
	lost     float64 // bits
	lossW    float64 // cumulative loss weight, seconds
	maxLevel float64

	srcRate []float64
	srcArr  []float64 // bits
	srcLost []float64 // bits
	srcT    []float64 // per-source last flush time
	srcW    []float64 // per-source lossW snapshot at last flush
}

// NewFluidMux creates a fluid multiplexer for the given number of
// attributed streams.
func NewFluidMux(linkRate float64, bufferCells, sources int) (*FluidMux, error) {
	if linkRate <= 0 {
		return nil, fmt.Errorf("netsim: non-positive link rate %v", linkRate)
	}
	if bufferCells < 0 {
		return nil, fmt.Errorf("netsim: negative buffer %d", bufferCells)
	}
	return &FluidMux{
		capacity: linkRate,
		bufBits:  float64(bufferCells) * CellBits,
		srcRate:  make([]float64, sources),
		srcArr:   make([]float64, sources),
		srcLost:  make([]float64, sources),
		srcT:     make([]float64, sources),
		srcW:     make([]float64, sources),
	}, nil
}

// integrate advances the analytic buffer to time t at the current
// aggregate inflow. Events fire in tick order, so float times from
// distinct sources can disagree within one tick; negative advances are
// clamped (the error is bounded by the tick length).
func (m *FluidMux) integrate(t float64) {
	dt := t - m.lastT
	if dt <= 0 {
		return
	}
	m.lastT = t
	R := m.sumRate
	if R < 0 {
		R = 0 // float residue from accumulated rate updates
	}
	C := m.capacity
	m.arrived += R * dt
	if R > C {
		m.served += C * dt
		rise := R - C
		if fill := (m.bufBits - m.level) / rise; fill >= dt {
			m.level += rise * dt
		} else {
			m.level = m.bufBits
			over := dt - fill
			m.lost += rise * over
			m.lossW += rise / R * over
		}
		if m.level > m.maxLevel {
			m.maxLevel = m.level
		}
		return
	}
	if m.level > 0 && C > R {
		if empty := m.level / (C - R); empty >= dt {
			m.level -= (C - R) * dt
			m.served += C * dt
		} else {
			m.served += C*empty + R*(dt-empty)
			m.level = 0
		}
		return
	}
	// Buffer empty (or R == C with a steady buffer): output tracks input.
	if m.level > 0 {
		m.served += C * dt
		return
	}
	m.served += R * dt
}

// setRate records stream id switching to inflow rate r at time t,
// flushing the stream's arrival/loss attribution for the closed
// interval since its previous change.
func (m *FluidMux) setRate(id int, t, r float64) {
	m.integrate(t)
	t = m.lastT // clamped, consistent with the aggregate accounting
	old := m.srcRate[id]
	m.srcArr[id] += old * (t - m.srcT[id])
	m.srcLost[id] += old * (m.lossW - m.srcW[id])
	m.srcT[id], m.srcW[id] = t, m.lossW
	m.srcRate[id] = r
	m.sumRate += r - old
}

// finish integrates to the horizon and flushes every stream's pending
// attribution.
func (m *FluidMux) finish(t float64) {
	m.integrate(t)
	for id := range m.srcRate {
		m.setRate(id, t, 0)
	}
}

// FluidSource walks a StepFunc one segment per event, pushing each
// rate change (including the terminal drop to zero) into its sink. The
// segment cursor is inherently monotone — the batched layer's answer
// to the cell layer's breakpoint rescans.
type FluidSource struct {
	eng    *Engine
	sink   rateSink
	id     int
	times  []float64
	values []float64
	end    float64
	offset float64
	cur    int
}

// NewFluidSource creates a source over rate shifted right by offset and
// schedules its first segment.
func NewFluidSource(eng *Engine, sink rateSink, id int, rate *metrics.StepFunc, offset float64) *FluidSource {
	s := &FluidSource{
		eng:    eng,
		sink:   sink,
		id:     id,
		times:  rate.Times,
		values: rate.Values,
		end:    rate.End,
		offset: offset,
		cur:    -1,
	}
	eng.Schedule(eng.TickAt(s.times[0]+offset), s)
	return s
}

// Fire advances to the next segment boundary.
func (s *FluidSource) Fire(Tick) {
	s.cur++
	if s.cur == len(s.times) {
		s.sink.setRate(s.id, s.end+s.offset, 0)
		return
	}
	s.sink.setRate(s.id, s.times[s.cur]+s.offset, s.values[s.cur])
	next := s.end + s.offset
	if s.cur+1 < len(s.times) {
		next = s.times[s.cur+1] + s.offset
	}
	s.eng.Schedule(s.eng.TickAt(next), s)
}

// FluidStream describes one stream of a fluid simulation.
type FluidStream struct {
	// Rate is the stream's transmission rate function.
	Rate *metrics.StepFunc
	// Offset shifts the stream right in time (decorrelating phases).
	Offset float64
	// Shaper, when non-nil, interposes a limited-bandwidth connection
	// (dual-rate token bucket with a delay queue) between the stream
	// and the multiplexer.
	Shaper *ShaperConfig
}

// FluidConfig describes one fluid multiplexing simulation.
type FluidConfig struct {
	Streams []FluidStream
	// LinkRate is the shared output link capacity in bits/s.
	LinkRate float64
	// BufferCells is the multiplexer's waiting-buffer size in cells.
	BufferCells int
	// Horizon bounds simulated time in seconds (0 = one second past the
	// last stream's end).
	Horizon float64
	// TickHz is the engine tick rate (0 = 1e9: nanosecond ticks).
	TickHz float64
}

// defaultFluidTickHz is nanosecond ticks — fluid accounting is
// closed-form between events, so the tick only orders breakpoints.
const defaultFluidTickHz = 1e9

// RunFluid simulates the configured streams through a shared
// finite-buffer multiplexer in batched fluid mode and returns the
// analytic statistics.
func RunFluid(cfg FluidConfig) (*FluidResult, error) {
	if len(cfg.Streams) == 0 {
		return nil, fmt.Errorf("netsim: no streams")
	}
	hz := cfg.TickHz
	if hz == 0 {
		hz = defaultFluidTickHz
	}
	eng := NewEngine(hz)
	mux, err := NewFluidMux(cfg.LinkRate, cfg.BufferCells, len(cfg.Streams))
	if err != nil {
		return nil, err
	}
	horizon := cfg.Horizon
	shapers := make([]*Shaper, len(cfg.Streams))
	for i, st := range cfg.Streams {
		if st.Rate == nil {
			return nil, fmt.Errorf("netsim: stream %d has no rate function", i)
		}
		if st.Offset < 0 {
			return nil, fmt.Errorf("netsim: negative offset %v", st.Offset)
		}
		var sink rateSink = mux
		if st.Shaper != nil {
			sh, err := NewShaper(eng, mux, i, *st.Shaper)
			if err != nil {
				return nil, fmt.Errorf("netsim: stream %d: %w", i, err)
			}
			shapers[i], sink = sh, sh
		}
		NewFluidSource(eng, sink, i, st.Rate, st.Offset)
		if cfg.Horizon == 0 {
			if end := st.Rate.End + st.Offset + 1; end > horizon {
				horizon = end
			}
		}
	}
	events := eng.Run(eng.TickAt(horizon))
	for _, sh := range shapers {
		if sh != nil {
			sh.flush(horizon)
		}
	}
	mux.finish(horizon)

	res := &FluidResult{
		ArrivedCells:  mux.arrived / CellBits,
		ServedCells:   mux.served / CellBits,
		LostCells:     mux.lost / CellBits,
		BufferedCells: mux.level / CellBits,
		MaxQueueCells: mux.maxLevel / CellBits,
		Events:        events,
		Sources:       make([]FluidSourceStats, len(cfg.Streams)),
	}
	for i := range res.Sources {
		res.Sources[i] = FluidSourceStats{
			ArrivedCells: mux.srcArr[i] / CellBits,
			LostCells:    mux.srcLost[i] / CellBits,
		}
		if shapers[i] != nil {
			res.Sources[i].MaxShapingDelay = shapers[i].MaxDelay()
		}
	}
	// Conservation, the same invariant the cell layer enforces, within
	// float tolerance of the analytic accounting.
	diff := math.Abs(mux.arrived - mux.served - mux.lost - mux.level)
	if diff > 1e-6*math.Max(1, mux.arrived) {
		return res, fmt.Errorf("netsim: fluid conservation violated: %g arrived, %g served, %g lost, %g buffered",
			mux.arrived, mux.served, mux.lost, mux.level)
	}
	return res, nil
}
