package mpeg

import (
	"math"
	"testing"

	"mpegsmooth/internal/video"
)

// testFrames synthesizes a short display-order frame sequence.
func testFrames(t testing.TB, w, h, n int, seed int64) []*video.Frame {
	t.Helper()
	s, err := video.NewSynthesizer(video.DrivingScript(w, h, n, seed))
	if err != nil {
		t.Fatal(err)
	}
	var frames []*video.Frame
	for !s.Done() {
		frames = append(frames, s.Next())
	}
	if len(frames) != n {
		t.Fatalf("synthesized %d frames, want %d", len(frames), n)
	}
	return frames
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig(64, 48, GOP{M: 3, N: 9})
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []Config{}
	for _, mut := range []func(*Config){
		func(c *Config) { c.Width = 63 },
		func(c *Config) { c.Height = 0 },
		func(c *Config) { c.GOP = GOP{M: 3, N: 10} },
		func(c *Config) { c.IQuant = 0 },
		func(c *Config) { c.BQuant = 32 },
		func(c *Config) { c.SearchRange = -1 },
		func(c *Config) { c.PictureRate = 17 },
		func(c *Config) { c.Height = 16 * 200 },
	} {
		c := good
		mut(&c)
		bad = append(bad, c)
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d should be invalid: %+v", i, c)
		}
	}
}

func TestMotionSearchFindsTranslation(t *testing.T) {
	// Build a reference with a distinctive texture and a current frame
	// equal to the reference shifted by (+3, -2). The search must find the
	// vector that undoes the shift for interior macroblocks.
	ref := video.MustNewFrame(96, 96)
	for y := 0; y < 96; y++ {
		for x := 0; x < 96; x++ {
			ref.Y[y*96+x] = uint8((x*7 + y*13 + (x*y)%31) % 255)
		}
	}
	cur := video.MustNewFrame(96, 96)
	const sx, sy = 3, -2
	for y := 0; y < 96; y++ {
		for x := 0; x < 96; x++ {
			rx, ry := x+sx, y+sy
			if rx < 0 || rx >= 96 || ry < 0 || ry >= 96 {
				cur.Y[y*96+x] = 0
				continue
			}
			cur.Y[y*96+x] = ref.Y[ry*96+rx]
		}
	}
	mv, sad := searchMotion(cur, ref, 2, 2, 8) // interior macroblock
	// Vectors are in half-pels: the full-pel shift (3,-2) is (6,-4).
	if mv.X != 2*sx || mv.Y != 2*sy {
		t.Fatalf("found mv (%d,%d) half-pels sad %d, want (%d,%d)", mv.X, mv.Y, sad, 2*sx, 2*sy)
	}
	if sad != 0 {
		t.Fatalf("perfect match should have SAD 0, got %d", sad)
	}
}

func TestMotionSearchFindsHalfPelShift(t *testing.T) {
	// Reference with a smooth gradient; current = half-pel shifted copy
	// (average of adjacent columns). The refinement must pick the odd
	// (half-pel) vector over both full-pel neighbours.
	ref := video.MustNewFrame(96, 96)
	for y := 0; y < 96; y++ {
		for x := 0; x < 96; x++ {
			ref.Y[y*96+x] = uint8((x * 37 / 5) % 256)
		}
	}
	cur := video.MustNewFrame(96, 96)
	for y := 0; y < 96; y++ {
		for x := 0; x < 95; x++ {
			cur.Y[y*96+x] = uint8((int(ref.Y[y*96+x]) + int(ref.Y[y*96+x+1]) + 1) / 2)
		}
		cur.Y[y*96+95] = ref.Y[y*96+95]
	}
	mv, sad := searchMotion(cur, ref, 2, 2, 4)
	if mv.X != 1 || mv.Y != 0 {
		t.Fatalf("found mv (%d,%d) sad %d, want the half-pel (1,0)", mv.X, mv.Y, sad)
	}
	if sad != 0 {
		t.Fatalf("half-pel match should be exact here, SAD %d", sad)
	}
}

func TestMotionSearchStaysInBounds(t *testing.T) {
	ref := video.MustNewFrame(32, 32)
	cur := video.MustNewFrame(32, 32)
	for i := range cur.Y {
		cur.Y[i] = uint8(i % 251)
	}
	// Corner macroblocks with a large search range: returned vectors must
	// keep the (possibly interpolated) 16x16 area inside the frame.
	for _, mb := range [][2]int{{0, 0}, {1, 0}, {0, 1}, {1, 1}} {
		mv, _ := searchMotion(cur, ref, mb[0], mb[1], 16)
		if !mvInBounds(ref, mb[0], mb[1], mv) {
			t.Fatalf("mb %v: vector %v leaves frame", mb, mv)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	frames := testFrames(t, 64, 48, 12, 7)
	cfg := DefaultConfig(64, 48, GOP{M: 3, N: 9})
	enc, err := NewEncoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := enc.EncodeSequence(frames)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Pictures) != len(frames) {
		t.Fatalf("encoded %d pictures, want %d", len(seq.Pictures), len(frames))
	}

	dec := NewDecoder()
	out, err := dec.Decode(seq.Data)
	if err != nil {
		t.Fatal(err)
	}
	if out.Header.Width != 64 || out.Header.Height != 48 || out.Header.PictureRate != 30 {
		t.Fatalf("decoded header %+v", out.Header)
	}
	if len(out.Frames) != len(frames) {
		t.Fatalf("decoded %d frames, want %d", len(out.Frames), len(frames))
	}
	for i, f := range out.Frames {
		if f.DisplayIdx != i {
			t.Fatalf("decoded frame %d has display index %d", i, f.DisplayIdx)
		}
		p, err := video.PSNR(frames[i], f)
		if err != nil {
			t.Fatal(err)
		}
		if p < 24 {
			t.Fatalf("frame %d PSNR %.1f dB too low (broken reconstruction)", i, p)
		}
	}
}

func TestEncodeDecodeM1NoBPictures(t *testing.T) {
	frames := testFrames(t, 48, 32, 10, 3)
	cfg := DefaultConfig(48, 32, GOP{M: 1, N: 5})
	enc, err := NewEncoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := enc.EncodeSequence(frames)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range seq.Pictures {
		if p.Type == TypeB {
			t.Fatal("M=1 sequence contains a B picture")
		}
	}
	out, err := NewDecoder().Decode(seq.Data)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Frames) != 10 {
		t.Fatalf("decoded %d frames", len(out.Frames))
	}
}

func TestEncodeTrailingBPictures(t *testing.T) {
	// 11 frames with N=9, M=3: displays 9 is I, 10 is B with no following
	// reference — the trailing-B path.
	frames := testFrames(t, 48, 32, 11, 5)
	enc, err := NewEncoder(DefaultConfig(48, 32, GOP{M: 3, N: 9}))
	if err != nil {
		t.Fatal(err)
	}
	seq, err := enc.EncodeSequence(frames)
	if err != nil {
		t.Fatal(err)
	}
	out, err := NewDecoder().Decode(seq.Data)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Frames) != 11 {
		t.Fatalf("decoded %d frames, want 11", len(out.Frames))
	}
	p, err := video.PSNR(frames[10], out.Frames[10])
	if err != nil {
		t.Fatal(err)
	}
	if p < 20 {
		t.Fatalf("trailing B PSNR %.1f dB", p)
	}
}

func TestPictureSizeOrderingIPB(t *testing.T) {
	// The paper's core premise: I pictures are much larger than P, which
	// are larger than B (an order of magnitude I vs B for natural scenes).
	frames := testFrames(t, 96, 64, 18, 11)
	enc, err := NewEncoder(DefaultConfig(96, 64, GOP{M: 3, N: 9}))
	if err != nil {
		t.Fatal(err)
	}
	seq, err := enc.EncodeSequence(frames)
	if err != nil {
		t.Fatal(err)
	}
	var sumI, sumP, sumB, nI, nP, nB float64
	for _, p := range seq.Pictures {
		switch p.Type {
		case TypeI:
			sumI += float64(p.Bits)
			nI++
		case TypeP:
			sumP += float64(p.Bits)
			nP++
		case TypeB:
			sumB += float64(p.Bits)
			nB++
		}
	}
	if nI == 0 || nP == 0 || nB == 0 {
		t.Fatalf("missing picture types: I=%v P=%v B=%v", nI, nP, nB)
	}
	meanI, meanP, meanB := sumI/nI, sumP/nP, sumB/nB
	if !(meanI > meanP && meanP > meanB) {
		t.Fatalf("size ordering violated: I=%.0f P=%.0f B=%.0f", meanI, meanP, meanB)
	}
	if meanI < 3*meanB {
		t.Fatalf("I pictures should dwarf B pictures: I=%.0f B=%.0f", meanI, meanB)
	}
}

func TestEncoderPictureInfoConsistency(t *testing.T) {
	frames := testFrames(t, 48, 32, 9, 2)
	enc, err := NewEncoder(DefaultConfig(48, 32, GOP{M: 3, N: 9}))
	if err != nil {
		t.Fatal(err)
	}
	seq, err := enc.EncodeSequence(frames)
	if err != nil {
		t.Fatal(err)
	}
	sizes := seq.SizesInDisplayOrder()
	if len(sizes) != 9 {
		t.Fatalf("%d sizes", len(sizes))
	}
	var total int64
	for i, s := range sizes {
		if s <= 0 {
			t.Fatalf("picture %d has size %d", i, s)
		}
		total += s
	}
	if total > int64(len(seq.Data))*8 {
		t.Fatalf("picture bits %d exceed stream length %d", total, len(seq.Data)*8)
	}
	// Transmission positions are 0..n-1.
	seen := make([]bool, 9)
	for _, p := range seq.Pictures {
		if p.TransmitPos < 0 || p.TransmitPos >= 9 || seen[p.TransmitPos] {
			t.Fatalf("bad transmission positions")
		}
		seen[p.TransmitPos] = true
	}
}

func TestInspectMatchesEncoder(t *testing.T) {
	frames := testFrames(t, 64, 48, 12, 9)
	enc, err := NewEncoder(DefaultConfig(64, 48, GOP{M: 3, N: 9}))
	if err != nil {
		t.Fatal(err)
	}
	seq, err := enc.EncodeSequence(frames)
	if err != nil {
		t.Fatal(err)
	}
	info, err := Inspect(seq.Data)
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Pictures) != len(seq.Pictures) {
		t.Fatalf("Inspect found %d pictures, encoder wrote %d", len(info.Pictures), len(seq.Pictures))
	}
	for i, p := range info.Pictures {
		e := seq.Pictures[i]
		if p.DisplayIdx != e.DisplayIdx || p.Type != e.Type {
			t.Fatalf("picture %d: inspect %+v vs encoder %+v", i, p, e)
		}
		if p.Bits != e.Bits {
			t.Fatalf("picture %d (display %d, %v): inspect %d bits, encoder %d bits",
				i, p.DisplayIdx, p.Type, p.Bits, e.Bits)
		}
	}
	if info.GroupCount != 2 { // I pictures at display 0 and 9
		t.Fatalf("GroupCount = %d, want 2", info.GroupCount)
	}
	if info.SliceCount != 12*3 { // 3 macroblock rows per picture
		t.Fatalf("SliceCount = %d, want 36", info.SliceCount)
	}
	// Accounting: picture bits + overhead = total bits.
	var acc int64 = info.OverheadBits
	for _, p := range info.Pictures {
		acc += p.Bits
	}
	if acc != info.TotalBits {
		t.Fatalf("accounting mismatch: pictures+overhead = %d, total = %d", acc, info.TotalBits)
	}
	sizes, err := info.SizesInDisplayOrder()
	if err != nil {
		t.Fatal(err)
	}
	encSizes := seq.SizesInDisplayOrder()
	for i := range sizes {
		if sizes[i] != encSizes[i] {
			t.Fatalf("display size %d: %d vs %d", i, sizes[i], encSizes[i])
		}
	}
}

func TestResilientDecodeSurvivesCorruption(t *testing.T) {
	frames := testFrames(t, 64, 48, 9, 13)
	enc, err := NewEncoder(DefaultConfig(64, 48, GOP{M: 3, N: 9}))
	if err != nil {
		t.Fatal(err)
	}
	seq, err := enc.EncodeSequence(frames)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt entropy-coded payload bytes in the middle of the first
	// picture (after its headers), steering clear of start codes.
	corrupt := append([]byte(nil), seq.Data...)
	off := int(seq.Pictures[0].BitOffset/8) + 40
	for i := 0; i < 6; i++ {
		corrupt[off+i] ^= 0x5A
	}
	// The strict decoder should fail...
	if _, err := NewDecoder().Decode(corrupt); err == nil {
		t.Log("strict decode happened to parse corrupted data (valid but wrong); continuing")
	}
	// ...the resilient decoder must recover and return all frames.
	dec := NewDecoder()
	dec.Resilient = true
	out, err := dec.Decode(corrupt)
	if err != nil {
		t.Fatalf("resilient decode failed: %v", err)
	}
	if len(out.Frames) != 9 {
		t.Fatalf("resilient decode returned %d frames, want 9", len(out.Frames))
	}
}

func TestEncoderRejectsBadInput(t *testing.T) {
	enc, err := NewEncoder(DefaultConfig(64, 48, GOP{M: 3, N: 9}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := enc.EncodeSequence(nil); err == nil {
		t.Fatal("empty sequence should fail")
	}
	wrong := []*video.Frame{video.MustNewFrame(32, 32)}
	if _, err := enc.EncodeSequence(wrong); err == nil {
		t.Fatal("wrong frame size should fail")
	}
}

func TestDecodeGarbage(t *testing.T) {
	if _, err := NewDecoder().Decode([]byte{1, 2, 3, 4}); err == nil {
		t.Fatal("garbage should not decode")
	}
	if _, err := NewDecoder().Decode(nil); err == nil {
		t.Fatal("empty stream should not decode")
	}
	if _, err := Inspect([]byte{0xFF, 0xFF}); err == nil {
		t.Fatal("garbage should not inspect")
	}
}

func TestStaticSceneCompressesToSkips(t *testing.T) {
	// A perfectly static sequence: P and B pictures should be tiny
	// relative to I pictures because nearly every macroblock is skipped.
	base := video.MustNewFrame(64, 48)
	for y := 0; y < 48; y++ {
		for x := 0; x < 64; x++ {
			base.Y[y*64+x] = uint8((x*3 + y*5) % 250)
		}
	}
	var frames []*video.Frame
	for i := 0; i < 9; i++ {
		f := base.Clone()
		f.DisplayIdx = i
		frames = append(frames, f)
	}
	enc, err := NewEncoder(DefaultConfig(64, 48, GOP{M: 3, N: 9}))
	if err != nil {
		t.Fatal(err)
	}
	seq, err := enc.EncodeSequence(frames)
	if err != nil {
		t.Fatal(err)
	}
	var iBits, bBits int64
	for _, p := range seq.Pictures {
		switch p.Type {
		case TypeI:
			iBits = p.Bits
		case TypeB:
			if p.Bits > bBits {
				bBits = p.Bits
			}
		}
	}
	if bBits*5 > iBits {
		t.Fatalf("static B pictures should be tiny: I=%d maxB=%d", iBits, bBits)
	}
	out, err := NewDecoder().Decode(seq.Data)
	if err != nil {
		t.Fatal(err)
	}
	p, err := video.PSNR(frames[8], out.Frames[8])
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(p, 1) {
		return // perfect reconstruction of a static scene is fine
	}
	if p < 30 {
		t.Fatalf("static scene PSNR %.1f dB", p)
	}
}

func BenchmarkEncodeCIFPicture(b *testing.B) {
	frames := testFrames(b, 352, 288, 2, 1)
	cfg := DefaultConfig(352, 288, GOP{M: 1, N: 1})
	enc, err := NewEncoder(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := enc.EncodeSequence(frames[:1]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeCIFPicture(b *testing.B) {
	frames := testFrames(b, 352, 288, 1, 1)
	enc, err := NewEncoder(DefaultConfig(352, 288, GOP{M: 1, N: 1}))
	if err != nil {
		b.Fatal(err)
	}
	seq, err := enc.EncodeSequence(frames)
	if err != nil {
		b.Fatal(err)
	}
	dec := NewDecoder()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dec.Decode(seq.Data); err != nil {
			b.Fatal(err)
		}
	}
}
