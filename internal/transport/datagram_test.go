package transport

import (
	"bytes"
	"errors"
	"hash/fnv"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// TestDatagramCodecRoundTrip: every packet kind encodes and decodes to
// itself.
func TestDatagramCodecRoundTrip(t *testing.T) {
	data := appendDataPacket(nil, dgKindData, 0xDEADBEEF, 42, []byte("picture bytes"))
	p, err := decodeDatagram(data)
	if err != nil {
		t.Fatalf("decode data: %v", err)
	}
	if p.Kind != dgKindData || p.Conn != 0xDEADBEEF || p.Seq != 42 || string(p.Payload) != "picture bytes" {
		t.Fatalf("data round trip: %+v", p)
	}

	fin := appendDataPacket(nil, dgKindFin, 7, 99, nil)
	p, err = decodeDatagram(fin)
	if err != nil {
		t.Fatalf("decode fin: %v", err)
	}
	if p.Kind != dgKindFin || p.Conn != 7 || p.Seq != 99 || len(p.Payload) != 0 {
		t.Fatalf("fin round trip: %+v", p)
	}

	ack := appendAckPacket(nil, 7, 1000, 0xA5A5)
	p, err = decodeDatagram(ack)
	if err != nil {
		t.Fatalf("decode ack: %v", err)
	}
	if p.Kind != dgKindAck || p.Conn != 7 || p.Cum != 1000 || p.Bitmap != 0xA5A5 {
		t.Fatalf("ack round trip: %+v", p)
	}
}

// TestDatagramCodecRejectsCorrupt: every malformation decodes to an
// ErrCorrupt-classed error, never a panic or a bogus packet.
func TestDatagramCodecRejectsCorrupt(t *testing.T) {
	good := appendDataPacket(nil, dgKindData, 1, 2, []byte("payload"))
	flipped := append([]byte(nil), good...)
	flipped[len(flipped)-1] ^= 0xFF
	badLen := append([]byte(nil), good...)
	badLen[9] ^= 0x01 // length field no longer matches the datagram
	finPayload := appendDataPacket(nil, dgKindData, 1, 2, []byte("x"))
	finPayload[0] = dgKindFin // fin must carry no payload
	// Re-CRC so only the fin-with-payload rule fails.
	finPayload = appendDataPacket(finPayload[:0], dgKindFin, 1, 2, nil)
	finPayload = append(finPayload[:dgDataHeader-2], 0, 1, 'x', 0, 0, 0, 0)

	cases := [][]byte{
		nil,
		{},
		{dgKindData},
		good[:dgDataHeader], // truncated before CRC
		good[:len(good)-1],  // truncated CRC
		append(good, 0x00),  // trailing byte
		flipped,             // CRC flip
		badLen,              // length/datagram mismatch
		{'z', 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}, // unknown kind
		appendAckPacket(nil, 1, 2, 3)[:dgAckSize-1],     // truncated ack
	}
	for i, buf := range cases {
		if _, err := decodeDatagram(buf); err == nil {
			t.Errorf("case %d: corrupt datagram decoded cleanly", i)
		} else if ClassifyFault(err) != FaultCorrupt {
			t.Errorf("case %d: classified %s, want corrupt", i, ClassifyFault(err))
		}
	}
}

// startEchoListener runs a datagram listener whose accepted flows echo
// every byte back until EOF.
func startEchoListener(t *testing.T, cfg DatagramConfig) *DatagramListener {
	t.Helper()
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen udp: %v", err)
	}
	l := ListenDatagram(pc, cfg)
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				io.Copy(conn, conn)
				conn.Close()
			}()
		}
	}()
	return l
}

// TestDatagramConnEcho: bytes written over the ARQ flow come back
// intact over clean UDP loopback.
func TestDatagramConnEcho(t *testing.T) {
	l := startEchoListener(t, DatagramConfig{Seed: 11})
	c, err := DialDatagram(l.Addr().String(), DatagramConfig{Seed: 12})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	msg := bytes.Repeat([]byte("smooth"), 4096) // crosses several MTUs
	if _, err := c.Write(msg); err != nil {
		t.Fatalf("write: %v", err)
	}
	got := make([]byte, len(msg))
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatalf("read echo: %v", err)
	}
	if !bytes.Equal(msg, got) {
		t.Fatal("echo differs from sent bytes")
	}
}

// lossyConn deterministically mangles the client→server packet stream:
// drops, duplicates, and displaces packets by index, exercising every
// ARQ recovery path without randomness.
type lossyConn struct {
	net.Conn
	mu   sync.Mutex
	n    int
	held []byte
}

func (c *lossyConn) Write(b []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	i := c.n
	c.n++
	switch {
	case i%5 == 2: // drop
		return len(b), nil
	case i%7 == 3: // duplicate
		c.Conn.Write(b)
		c.Conn.Write(b)
		return len(b), nil
	case i%11 == 4 && c.held == nil: // hold for reordering
		c.held = append([]byte(nil), b...)
		return len(b), nil
	}
	n, err := c.Conn.Write(b)
	if c.held != nil {
		c.Conn.Write(c.held) // emit the held packet one slot late
		c.held = nil
	}
	return n, err
}

// TestDatagramConnLossy: a flow over a dropping/duplicating/reordering
// channel still delivers a byte-exact stream, and the ARQ counters show
// the machinery actually fired.
func TestDatagramConnLossy(t *testing.T) {
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen udp: %v", err)
	}
	l := ListenDatagram(pc, DatagramConfig{Seed: 21})
	defer l.Close()

	type result struct {
		sum uint64
		n   int64
	}
	srvDone := make(chan result, 1)
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		h := fnv.New64a()
		n, _ := io.Copy(h, conn)
		conn.Close()
		srvDone <- result{h.Sum64(), n}
	}()

	raddr, _ := net.ResolveUDPAddr("udp", l.Addr().String())
	udp, err := net.DialUDP("udp", nil, raddr)
	if err != nil {
		t.Fatalf("dial udp: %v", err)
	}
	cfg := DatagramConfig{
		Seed: 22,
		MTU:  512,
		RTO:  Backoff{Base: 5 * time.Millisecond, Max: 100 * time.Millisecond},
	}
	c := NewDatagramClientConn(&lossyConn{Conn: udp}, cfg)

	payload := make([]byte, 96<<10)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	want := fnv.New64a()
	want.Write(payload)

	c.SetWriteDeadline(time.Now().Add(20 * time.Second))
	for off := 0; off < len(payload); off += 1024 {
		end := min(off+1024, len(payload))
		if _, err := c.Write(payload[off:end]); err != nil {
			t.Fatalf("write at %d: %v", off, err)
		}
	}
	stats := c.Stats()
	c.Close() // FIN: server's io.Copy ends at EOF

	select {
	case got := <-srvDone:
		if got.n != int64(len(payload)) {
			t.Fatalf("server received %d bytes, want %d", got.n, len(payload))
		}
		if got.sum != want.Sum64() {
			t.Fatal("delivered bytes differ from sent bytes")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("transfer did not complete")
	}
	if stats.Retransmits+stats.FastRetransmits == 0 {
		t.Error("lossy channel produced no retransmissions")
	}
	t.Logf("stats: %+v", stats)
}

// blackholeAddr/blackholeConn: a packet conn that discards every write
// and never delivers a read — the shape of a totally dead channel.
type blackholeAddr struct{}

func (blackholeAddr) Network() string { return "udp" }
func (blackholeAddr) String() string  { return "blackhole" }

type blackholeConn struct {
	closed    chan struct{}
	closeOnce sync.Once
}

func newBlackholeConn() *blackholeConn { return &blackholeConn{closed: make(chan struct{})} }

func (c *blackholeConn) Read(p []byte) (int, error) {
	<-c.closed
	return 0, net.ErrClosed
}
func (c *blackholeConn) Write(p []byte) (int, error) { return len(p), nil }
func (c *blackholeConn) Close() error {
	c.closeOnce.Do(func() { close(c.closed) })
	return nil
}
func (c *blackholeConn) LocalAddr() net.Addr              { return blackholeAddr{} }
func (c *blackholeConn) RemoteAddr() net.Addr             { return blackholeAddr{} }
func (c *blackholeConn) SetDeadline(time.Time) error      { return nil }
func (c *blackholeConn) SetReadDeadline(time.Time) error  { return nil }
func (c *blackholeConn) SetWriteDeadline(time.Time) error { return nil }

// TestDatagramRetransmitExhausted: a dead channel fails the flow with
// the retransmit-exhausted class after the attempt budget, not a hang.
func TestDatagramRetransmitExhausted(t *testing.T) {
	cfg := DatagramConfig{
		Seed:           31,
		MTU:            64,
		Window:         4,
		RTO:            Backoff{Base: 2 * time.Millisecond, Max: 10 * time.Millisecond},
		MaxRetransmits: 3,
	}
	c := NewDatagramClientConn(newBlackholeConn(), cfg)
	defer c.Close()

	c.SetWriteDeadline(time.Now().Add(10 * time.Second))
	var err error
	for i := 0; i < 1000 && err == nil; i++ {
		_, err = c.Write(make([]byte, 256)) // overfill the window
	}
	if err == nil {
		t.Fatal("write into a black hole never failed")
	}
	if !errors.Is(err, ErrRetransmitExhausted) {
		t.Fatalf("got %v, want ErrRetransmitExhausted", err)
	}
	if ClassifyFault(err) != FaultRetransmitExhausted {
		t.Fatalf("classified %s, want retransmit-exhausted", ClassifyFault(err))
	}
}

// TestDatagramReorderOverflow: a sequence displaced beyond the bounded
// reassembly window tears the flow down with the reorder-overflow
// class.
func TestDatagramReorderOverflow(t *testing.T) {
	c := NewDatagramClientConn(newBlackholeConn(), DatagramConfig{Seed: 41})
	defer c.Close()

	c.handlePacket(dgPacket{Kind: dgKindData, Conn: c.ConnID(), Seq: dgReassemblyWindow, Payload: []byte("x")})
	_, err := c.Read(make([]byte, 1))
	if !errors.Is(err, ErrReorderOverflow) {
		t.Fatalf("got %v, want ErrReorderOverflow", err)
	}
	if ClassifyFault(err) != FaultReorderOverflow {
		t.Fatalf("classified %s, want reorder-overflow", ClassifyFault(err))
	}
}

// TestDatagramStaleAck: an acknowledgement for sequences never sent —
// stale-incarnation traffic past the ID check — fails the flow with
// the stale-duplicate class.
func TestDatagramStaleAck(t *testing.T) {
	c := NewDatagramClientConn(newBlackholeConn(), DatagramConfig{Seed: 51})
	defer c.Close()

	c.handlePacket(dgPacket{Kind: dgKindAck, Conn: c.ConnID(), Cum: 5})
	_, err := c.Write([]byte("x"))
	if !errors.Is(err, ErrStaleDuplicate) {
		t.Fatalf("got %v, want ErrStaleDuplicate", err)
	}
	if ClassifyFault(err) != FaultStaleDuplicate {
		t.Fatalf("classified %s, want stale-duplicate", ClassifyFault(err))
	}
}

// TestDatagramStaleIncarnationDropped: packets under a foreign
// connection ID are dropped silently — counted, never delivered.
func TestDatagramStaleIncarnationDropped(t *testing.T) {
	c := NewDatagramClientConn(newBlackholeConn(), DatagramConfig{Seed: 61})
	defer c.Close()

	c.handlePacket(dgPacket{Kind: dgKindData, Conn: c.ConnID() + 1, Seq: 0, Payload: []byte("ghost")})
	c.SetReadDeadline(time.Now().Add(20 * time.Millisecond))
	if n, err := c.Read(make([]byte, 8)); err == nil || n != 0 {
		t.Fatalf("read returned (%d, %v), want a deadline expiry and no ghost bytes", n, err)
	}
	if got := c.Stats().StaleDropped; got != 1 {
		t.Fatalf("StaleDropped = %d, want 1", got)
	}
}

// TestDatagramFrameProtocolOverARQ: the stream frame codec — CRC,
// sequence discipline and all — runs over a DGConn unchanged.
func TestDatagramFrameProtocolOverARQ(t *testing.T) {
	l := startEchoListener(t, DatagramConfig{Seed: 71})
	c, err := DialDatagram(l.Addr().String(), DatagramConfig{Seed: 72})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	fw := NewFrameWriter(c)
	fr := NewFrameReader(c)
	c.SetDeadline(time.Now().Add(10 * time.Second))
	for i := 0; i < 5; i++ {
		// The echo server reflects the raw bytes, so the reflected
		// frames carry the same CRCs and sequence numbers the reader
		// expects — any ARQ slip (lost, duplicated, reordered bytes)
		// would trip the frame layer's own checks.
		want := RateNotification{Index: i, Rate: float64(1000 * (i + 1))}
		if err := fw.WriteRate(want); err != nil {
			t.Fatalf("write rate %d: %v", i, err)
		}
		msg, err := fr.ReadMessage()
		if err != nil {
			t.Fatalf("read echo %d: %v", i, err)
		}
		got, ok := msg.(*RateNotification)
		if !ok || *got != want {
			t.Fatalf("echo %d mangled: %T %+v", i, msg, msg)
		}
	}
}
