package core

import (
	"errors"
	"fmt"

	"mpegsmooth/internal/mpeg"
)

// LiveSmoother is the incremental, transport-embeddable form of the
// smoothing algorithm: picture sizes are pushed one at a time as the
// encoder produces them, and rate decisions are returned as soon as
// their inputs are determined. A LiveSmoother produces bit-for-bit the
// same schedule as Smooth over the same data (asserted by tests), so the
// Theorem 1 guarantees carry over unchanged.
//
// A decision for picture j is computable once
//
//   - pictures j .. j+K−1 have been pushed (Eq. 2's arrival condition),
//   - every picture visible at t_j — i.e. with (i+1)τ ≤ t_j — has been
//     pushed, so the estimator's view is complete, and
//   - the existence of the H-picture lookahead window is settled, which
//     before Close means pictures j .. j+H−1 have been pushed.
//
// Close marks the end of the sequence and flushes the remaining
// decisions, bounding the lookahead at the sequence end exactly as the
// offline algorithm does.
//
// LiveSmoother is not safe for concurrent use.
type LiveSmoother struct {
	cfg    Config
	engine *engine
	sizes  []int64

	next   int // next picture awaiting a decision
	depart float64
	rate   float64
	closed bool
}

// Decision reports one scheduled picture. The fields mirror Schedule's
// per-picture arrays.
type Decision struct {
	Picture              int
	Rate                 float64
	Start, Depart, Delay float64
	Lower, Upper         float64
}

// NewLiveSmoother prepares an incremental smoother for a stream with the
// given picture period and coding pattern.
func NewLiveSmoother(tau float64, gop mpeg.GOP, cfg Config) (*LiveSmoother, error) {
	if tau <= 0 {
		return nil, fmt.Errorf("core: non-positive picture period %v", tau)
	}
	if err := gop.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Validate(tau); err != nil {
		return nil, err
	}
	if cfg.Estimator == nil {
		cfg.Estimator = PatternEstimator{}
	}
	return &LiveSmoother{
		cfg:    cfg,
		engine: &engine{cfg: cfg, tau: tau, gop: gop},
	}, nil
}

// Push appends the size of the next encoded picture (display order) and
// returns any decisions that became determined. It returns an error
// after Close or for a non-positive size.
func (l *LiveSmoother) Push(size int64) ([]Decision, error) {
	if l.closed {
		return nil, errors.New("core: Push after Close")
	}
	if size <= 0 {
		return nil, fmt.Errorf("core: non-positive picture size %d", size)
	}
	l.sizes = append(l.sizes, size)
	return l.drain(), nil
}

// Close marks the end of the picture sequence and returns all remaining
// decisions. Close is idempotent.
func (l *LiveSmoother) Close() []Decision {
	l.closed = true
	return l.drain()
}

// Pushed returns the number of picture sizes received so far.
func (l *LiveSmoother) Pushed() int { return len(l.sizes) }

// Pending returns the number of pushed pictures that do not yet have a
// rate decision.
func (l *LiveSmoother) Pending() int { return len(l.sizes) - l.next }

// drain emits every decision whose inputs are determined.
func (l *LiveSmoother) drain() []Decision {
	var out []Decision
	tau := l.engine.tau
	for l.next < len(l.sizes) {
		j := l.next
		a := len(l.sizes)
		if !l.closed {
			// Arrival condition: pictures j..j+K−1 pushed.
			if a < j+l.cfg.K {
				break
			}
			// Lookahead existence: the offline algorithm would examine
			// pictures j..j+H−1 unless the sequence ends first; before
			// Close we cannot know it ends, so wait for them.
			if a < j+l.cfg.H {
				break
			}
			// View completeness: every picture visible at t_j must be
			// pushed. t_j is already determined by depart and (j+K)τ.
			now := l.depart
			if t := float64(j+l.cfg.K) * tau; t > now {
				now = t
			}
			// Count pictures with (i+1)τ <= now using the same float
			// comparison View.Arrived uses, so live and offline views
			// agree bit for bit.
			visible := int(now / tau)
			for float64(visible+1)*tau <= now {
				visible++
			}
			for visible > 0 && float64(visible)*tau > now {
				visible--
			}
			if visible > a {
				break
			}
		}
		end := -1
		if l.closed {
			end = len(l.sizes)
		}
		d := l.engine.decide(j, l.sizes, l.depart, l.rate, end)
		l.depart, l.rate = d.Depart, d.Rate
		l.next++
		out = append(out, Decision(d))
	}
	return out
}
