package cluster

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"testing"
	"time"

	"mpegsmooth/internal/journal"
	"mpegsmooth/internal/server"
)

// trackerTimeout is generous against scheduler noise; tracker tests
// that expect a wait to SUCCEED use it, tests that expect a degrade use
// a tight deadline instead.
const trackerTimeout = 5 * time.Second

func waitErr(q *quorumTracker, seq uint64, within time.Duration) error {
	ctx, cancel := context.WithTimeout(context.Background(), within)
	defer cancel()
	return q.WaitCommitted(ctx, seq)
}

// TestQuorumTrackerFormation: the tracker starts degraded (a fresh
// primary has no followers), commits locally in that state, and forms
// its quorum once the needed ranks attach and ack — after which commits
// wait for follower acks.
func TestQuorumTrackerFormation(t *testing.T) {
	q := newQuorumTracker(1, 1024, trackerTimeout, t.Logf)
	if !q.isDegraded() {
		t.Fatal("fresh tracker is not degraded: a primary with no followers would wedge")
	}
	// Degraded commits release immediately on local durability.
	if err := waitErr(q, 1, trackerTimeout); err != nil {
		t.Fatalf("degraded commit: %v", err)
	}
	// Attachment alone does not form the quorum — the follower must ack
	// everything asked of the gate so far (seq 1).
	q.attach("alpha/1", 1)
	if !q.isDegraded() {
		t.Fatal("quorum formed on attach alone, before any ack")
	}
	q.ack("alpha/1", 1)
	if q.isDegraded() {
		t.Fatal("quorum did not form after the follower acked everything")
	}
	// Now commits gate on the follower: seq 2 must block until acked.
	done := make(chan error, 1)
	go func() { done <- waitErr(q, 2, trackerTimeout) }()
	select {
	case err := <-done:
		t.Fatalf("commit released before the follower acked: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	q.ack("alpha/1", 2)
	if err := <-done; err != nil {
		t.Fatalf("quorum commit: %v", err)
	}
	st := q.status()
	if st.QuorumCommits != 1 || st.LocalCommits != 1 || st.DegradedEvents != 0 {
		t.Fatalf("counters %+v: want 1 quorum + 1 local commit, formation not counted as a degrade", st)
	}
}

// TestQuorumTrackerRankOrder: the commit floor follows the lowest
// `need` connected ranks — the ranks the election stagger prefers — so
// a higher rank racing ahead cannot commit a record the likely
// promotion winner does not hold.
func TestQuorumTrackerRankOrder(t *testing.T) {
	q := newQuorumTracker(1, 1024, trackerTimeout, t.Logf)
	q.attach("alpha/1", 1)
	q.attach("alpha/2", 2)
	q.ack("alpha/2", 10) // the wrong rank: ahead, but not the election favorite
	q.mu.Lock()
	floor := q.commitFloorLocked()
	q.mu.Unlock()
	if floor != 0 {
		t.Fatalf("commit floor %d from rank 2 alone; rank 1 has acked nothing", floor)
	}
	q.ack("alpha/1", 4)
	q.mu.Lock()
	floor = q.commitFloorLocked()
	q.mu.Unlock()
	if floor != 4 {
		t.Fatalf("commit floor %d, want rank 1's cursor 4", floor)
	}
	// Rank 1 detaching hands the floor to rank 2 (still >= need
	// followers: no degrade, durability rides the next-best rank).
	q.detach("alpha/1")
	q.mu.Lock()
	floor = q.commitFloorLocked()
	q.mu.Unlock()
	if floor != 10 {
		t.Fatalf("commit floor %d after rank 1 left, want rank 2's cursor 10", floor)
	}
	if q.isDegraded() {
		t.Fatal("degraded with a full quorum still attached")
	}
}

// TestQuorumTrackerDegrades pins every degrade trigger: ack deadline,
// in-flight window overflow, and follower loss below quorum — each
// counts an event, flips /healthz-visible state, and releases waiters
// on local durability instead of wedging them.
func TestQuorumTrackerDegrades(t *testing.T) {
	t.Run("ack deadline", func(t *testing.T) {
		q := newQuorumTracker(1, 1024, 20*time.Millisecond, t.Logf)
		q.attach("alpha/1", 1)
		q.ack("alpha/1", 1)
		start := time.Now()
		if err := waitErr(q, 5, trackerTimeout); err != nil {
			t.Fatalf("commit after ack deadline: %v", err)
		}
		if time.Since(start) < 20*time.Millisecond {
			t.Fatal("commit released before the ack deadline without a quorum")
		}
		st := q.status()
		if !st.Degraded || st.AckTimeouts != 1 || st.DegradedEvents != 1 || st.LocalCommits != 1 {
			t.Fatalf("counters %+v: want degraded with one ack timeout", st)
		}
	})
	t.Run("window overflow", func(t *testing.T) {
		q := newQuorumTracker(1, 4, trackerTimeout, t.Logf)
		q.attach("alpha/1", 1)
		q.ack("alpha/1", 1)
		// Floor 1, window 4: seq 6 overflows the in-flight window and
		// must degrade immediately, not sit out the (long) ack deadline.
		start := time.Now()
		if err := waitErr(q, 6, trackerTimeout); err != nil {
			t.Fatalf("commit after window overflow: %v", err)
		}
		if time.Since(start) > trackerTimeout/2 {
			t.Fatal("window overflow waited for the ack deadline")
		}
		if st := q.status(); !st.Degraded || st.DegradedEvents != 1 || st.AckTimeouts != 0 {
			t.Fatalf("counters %+v: want a degrade without an ack timeout", st)
		}
	})
	t.Run("followers lost", func(t *testing.T) {
		q := newQuorumTracker(1, 1024, trackerTimeout, t.Logf)
		q.attach("alpha/1", 1)
		q.ack("alpha/1", 3)
		if q.isDegraded() {
			t.Fatal("degraded with the quorum formed")
		}
		q.detach("alpha/1")
		if !q.isDegraded() {
			t.Fatal("not degraded after losing the last follower")
		}
		// A waiter arriving now must release locally, fast.
		if err := waitErr(q, 9, trackerTimeout); err != nil {
			t.Fatalf("degraded commit: %v", err)
		}
		// Reform: a follower re-attaches and acks everything asked so far.
		q.attach("alpha/1", 1)
		q.ack("alpha/1", 8)
		if !q.isDegraded() {
			t.Fatal("quorum reformed before the follower caught up through seq 9")
		}
		q.ack("alpha/1", 9)
		if q.isDegraded() {
			t.Fatal("quorum did not reform after full catch-up")
		}
		if st := q.status(); st.DegradedEvents != 1 {
			t.Fatalf("counters %+v: want exactly one degraded event across the cycle", st)
		}
	})
}

// TestQuorumTrackerClose: a closed gate (demotion, shutdown) terminates
// current and future waiters with an error — the server rolls the
// admission back rather than acknowledging it.
func TestQuorumTrackerClose(t *testing.T) {
	q := newQuorumTracker(1, 1024, trackerTimeout, t.Logf)
	q.attach("alpha/1", 1)
	q.ack("alpha/1", 1)
	done := make(chan error, 1)
	go func() { done <- waitErr(q, 2, trackerTimeout) }()
	time.Sleep(10 * time.Millisecond)
	q.close()
	if err := <-done; !errors.Is(err, errQuorumClosed) {
		t.Fatalf("waiter got %v, want errQuorumClosed", err)
	}
	if err := waitErr(q, 3, trackerTimeout); !errors.Is(err, errQuorumClosed) {
		t.Fatalf("post-close waiter got %v, want errQuorumClosed", err)
	}
}

// TestQuorumTrackerContext: a canceled stream context unblocks its
// waiter without disturbing the gate.
func TestQuorumTrackerContext(t *testing.T) {
	q := newQuorumTracker(1, 1024, trackerTimeout, t.Logf)
	q.attach("alpha/1", 1)
	q.ack("alpha/1", 1)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- q.WaitCommitted(ctx, 2) }()
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled waiter got %v", err)
	}
	if q.isDegraded() {
		t.Fatal("context cancellation degraded the gate")
	}
}

// TestFollowerDialBackoff pins the reconnect schedule satellite: a
// follower whose primary is absent retries its replication dial on the
// transport's jittered exponential backoff (counting each failure),
// and attaches promptly once the primary appears.
func TestFollowerDialBackoff(t *testing.T) {
	kit := makeClient(t, testTrace(t, 54))
	addrs := freeAddrs(t, 2)
	peers := []Peer{{Name: "alpha", StreamAddr: addrs[0], ReplAddr: addrs[1]}}
	scfg := server.Config{LinkRate: 2 * kit.hello.PeakRate, TimeScale: soakTimeScale}

	fcfg := Config{Shard: "alpha", Rank: 1, Peers: peers, Server: scfg, Seed: 11,
		Journal: journal.Config{Dir: t.TempDir(), FlushInterval: 5 * time.Millisecond}}
	fastTimings(&fcfg)
	// Keep the follower from concluding the primary is dead and
	// promoting itself: this test is about the dial schedule alone.
	fcfg.FailoverTimeout = time.Minute
	fcfg.DialTimeout = 100 * time.Millisecond // backoff base 12.5ms
	follower := startNode(t, fcfg)

	waitFor(t, "dial retries accumulating", func() bool {
		return follower.Status().Replication.DialRetries >= 3
	})
	if follower.Role() != RoleFollower {
		t.Fatal("follower promoted itself while only the dial was failing")
	}

	pcfg := Config{Shard: "alpha", Rank: 0, Peers: peers, Server: scfg,
		Journal: journal.Config{Dir: t.TempDir(), FlushInterval: 5 * time.Millisecond}}
	fastTimings(&pcfg)
	startNode(t, pcfg)
	waitFor(t, "follower attached after primary start", func() bool {
		return follower.Status().Replication.Connected
	})
}

// TestTwoFollowerPromotionJitter pins the election-stagger satellite:
// two followers at the SAME rank — the lockstep case the seeded jitter
// exists for — detect the primary's death together, and exactly one of
// them wins the port-bind election while the other re-attaches to it
// as a follower.
func TestTwoFollowerPromotionJitter(t *testing.T) {
	if testing.Short() {
		t.Skip("promotion test skipped in -short mode")
	}
	kit := makeClient(t, testTrace(t, 54))
	addrs := freeAddrs(t, 2)
	peers := []Peer{{Name: "alpha", StreamAddr: addrs[0], ReplAddr: addrs[1]}}
	scfg := server.Config{LinkRate: 2 * kit.hello.PeakRate, TimeScale: soakTimeScale, ResumeWindow: 10 * time.Second}

	pcfg := Config{Shard: "alpha", Rank: 0, Peers: peers, Server: scfg,
		Journal: journal.Config{Dir: t.TempDir(), FlushInterval: 5 * time.Millisecond}}
	fastTimings(&pcfg)
	primary := startNode(t, pcfg)

	followers := make([]*Node, 2)
	for i := range followers {
		fcfg := Config{Shard: "alpha", Rank: 1, Peers: peers, Server: scfg, Seed: int64(100 + i),
			Journal: journal.Config{Dir: t.TempDir(), FlushInterval: 5 * time.Millisecond}}
		fastTimings(&fcfg)
		followers[i] = startNode(t, fcfg)
	}
	for i, f := range followers {
		waitFor(t, "follower attached", func() bool {
			return f.Status().Replication.Connected
		})
		_ = i
	}

	primary.Kill()
	waitFor(t, "exactly one follower promoted, the other re-attached", func() bool {
		var primaries, attached int
		for _, f := range followers {
			switch f.Role() {
			case RolePrimary:
				primaries++
			case RoleFollower:
				if f.Status().Replication.Connected {
					attached++
				}
			}
		}
		return primaries == 1 && attached == 1
	})
	var promotions int64
	for _, f := range followers {
		promotions += f.Status().Promotions
	}
	if promotions != 1 {
		t.Fatalf("%d promotions across the pair, want exactly 1", promotions)
	}
}

// buildReplFrame encodes one replication frame the way writeReplFrame
// does, for the fuzzer's seed corpus.
func buildReplFrame(t testing.TB, typ byte, payload []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := writeReplFrame(&buf, typ, payload); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzReplFrame hammers the MSRP frame parser with arbitrary bytes:
// truncations, CRC flips, and oversized declared payloads must all
// produce an error — never a panic, an over-read, or a frame the
// writer could not have produced.
func FuzzReplFrame(f *testing.F) {
	hello := make([]byte, 0, helloPrefix+7)
	hello = binary.BigEndian.AppendUint64(hello, 3)
	hello = binary.BigEndian.AppendUint32(hello, 1)
	hello = append(hello, "alpha/1"...)
	ack := make([]byte, 0, ackLen)
	ack = binary.BigEndian.AppendUint64(ack, 3)
	ack = binary.BigEndian.AppendUint64(ack, 42)
	cursor := appendCursor(nil, 3, journal.Offsets{SegmentSeq: 2, Records: 99, Bytes: 4096})
	seeds := [][]byte{
		buildReplFrame(f, replHello, hello),
		buildReplFrame(f, replAck, ack),
		buildReplFrame(f, replHeartbeat, cursor),
		buildReplFrame(f, replRecord, append(append([]byte{}, cursor...), 0xDE, 0xAD)),
		buildReplFrame(f, replSnapshot, nil),
	}
	for _, s := range seeds {
		f.Add(s)
		f.Add(s[:len(s)-1]) // truncated CRC
		f.Add(s[:5])        // truncated payload
		flipped := append([]byte{}, s...)
		flipped[len(flipped)-1] ^= 0x01 // CRC flip
		f.Add(flipped)
	}
	oversized := []byte{replRecord, 0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0}
	f.Add(oversized)

	f.Fuzz(func(t *testing.T, data []byte) {
		typ, payload, total, err := parseReplFrame(data)
		if err != nil {
			return
		}
		if total < 9 || total > len(data) {
			t.Fatalf("frame size %d out of bounds for %d input bytes", total, len(data))
		}
		if len(payload) != total-9 {
			t.Fatalf("payload %d bytes inside a %d-byte frame", len(payload), total)
		}
		// Anything the parser accepts, the writer reproduces bit-exactly:
		// accepted frames are exactly the writable ones.
		var buf bytes.Buffer
		if err := writeReplFrame(&buf, typ, payload); err != nil {
			t.Fatalf("re-encoding an accepted frame: %v", err)
		}
		if !bytes.Equal(buf.Bytes(), data[:total]) {
			t.Fatalf("re-encoded frame differs:\n got %x\nwant %x", buf.Bytes(), data[:total])
		}
	})
}
